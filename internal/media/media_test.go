package media

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func TestSourceDeterministic(t *testing.T) {
	a := NewSource(32, 24, 7)
	b := NewSource(32, 24, 7)
	for i := 0; i < 5; i++ {
		fa, fb := a.Next(), b.Next()
		if fa.Seq != fb.Seq {
			t.Fatal("seq mismatch")
		}
		for j := range fa.Pix {
			if fa.Pix[j] != fb.Pix[j] {
				t.Fatalf("pixel mismatch at frame %d", i)
			}
		}
	}
}

func TestSourceFramesEvolve(t *testing.T) {
	s := NewSource(32, 24, 7)
	a, b := s.Next(), s.Next()
	if a.Seq+1 != b.Seq {
		t.Fatal("seq not incrementing")
	}
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("consecutive frames identical")
	}
}

func TestFrameCloneIndependent(t *testing.T) {
	f := NewFrame(1, 4, 4)
	f.Pix[0] = 10
	g := f.Clone()
	g.Pix[0] = 20
	if f.Pix[0] != 10 {
		t.Fatal("clone aliases original")
	}
	if f.At(0, 0) != 10 {
		t.Fatal("At wrong")
	}
}

func TestClamp8(t *testing.T) {
	if clamp8(-5) != 0 || clamp8(300) != 255 || clamp8(128.4) != 128 {
		t.Fatal("clamp8 wrong")
	}
}

func TestSSIMIdentical(t *testing.T) {
	f := NewSource(64, 48, 1).Next()
	v, err := SSIM(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Fatalf("SSIM(f,f) = %v, want 1", v)
	}
}

func TestSSIMDecreasesWithNoise(t *testing.T) {
	f := NewSource(64, 48, 1).Next()
	prev := 1.0
	for _, sigma := range []float64{5, 15, 40} {
		ef := &EncodedFrame{Seq: f.Seq, NoiseSigma: sigma, Source: f}
		v := MustSSIM(f, ef.Decode())
		if v >= prev {
			t.Fatalf("SSIM not decreasing: sigma=%v -> %v (prev %v)", sigma, v, prev)
		}
		prev = v
	}
}

func TestSSIMErrors(t *testing.T) {
	a := NewFrame(1, 64, 48)
	b := NewFrame(1, 32, 48)
	if _, err := SSIM(a, b); err != ErrSSIMMismatch {
		t.Fatal("size mismatch not detected")
	}
	tiny := NewFrame(1, 4, 4)
	if _, err := SSIM(tiny, tiny); err != ErrSSIMMismatch {
		t.Fatal("too-small frame not detected")
	}
}

func TestSSIMSymmetricProperty(t *testing.T) {
	src := NewSource(64, 48, 3)
	f := func(sigma8 uint8) bool {
		f1 := src.Next()
		ef := &EncodedFrame{Seq: f1.Seq, NoiseSigma: float64(sigma8) / 8, Source: f1}
		f2 := ef.Decode()
		a := MustSSIM(f1, f2)
		b := MustSSIM(f2, f1)
		return math.Abs(a-b) < 1e-12 && a <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestModeProperties(t *testing.T) {
	if Mode28FPS.FPS() != 28 || Mode28FPS.BaseFPS() != 14 {
		t.Fatal("Mode28FPS wrong")
	}
	if Mode14FPS.FPS() != 14 || Mode14FPS.BaseFPS() != 7 {
		t.Fatal("Mode14FPS wrong")
	}
	if Mode28FPS.Interval() <= 0 {
		t.Fatal("interval")
	}
}

func TestEncoderLayerCadence(t *testing.T) {
	src := NewSource(64, 48, 2)
	e := NewEncoder(Mode28FPS, units.Mbps, 1)
	layers := []rtp.SVCLayer{}
	for i := 0; i < 8; i++ {
		ef := e.Encode(src.Next(), time.Duration(i)*Mode28FPS.Interval())
		if ef == nil {
			t.Fatalf("frame %d skipped unexpectedly", i)
		}
		layers = append(layers, ef.Layer)
	}
	for i, l := range layers {
		want := rtp.LayerBase
		if i%2 == 1 {
			want = rtp.LayerHighFPSEnhancement
		}
		if l != want {
			t.Fatalf("frame %d layer %v, want %v", i, l, want)
		}
	}
}

func TestEncoderMode14UsesLowFPSEnhancement(t *testing.T) {
	src := NewSource(64, 48, 2)
	e := NewEncoder(Mode14FPS, units.Mbps, 1)
	e.Encode(src.Next(), 0) // base
	ef := e.Encode(src.Next(), Mode14FPS.Interval())
	if ef.Layer != rtp.LayerLowFPSEnhancement {
		t.Fatalf("layer = %v", ef.Layer)
	}
}

func TestEncoderTracksTargetRate(t *testing.T) {
	src := NewSource(64, 48, 2)
	for _, target := range []units.BitRate{300 * units.Kbps, 1000 * units.Kbps} {
		e := NewEncoder(Mode28FPS, target, 1)
		var total units.ByteCount
		n := 280 // 10 seconds
		for i := 0; i < n; i++ {
			ef := e.Encode(src.Next(), time.Duration(i)*Mode28FPS.Interval())
			total += ef.Bytes
		}
		got := units.RateOf(total, 10*time.Second)
		ratio := float64(got) / float64(target)
		if ratio < 0.9 || ratio > 1.15 {
			t.Errorf("target %v achieved %v (ratio %.2f)", target, got, ratio)
		}
	}
}

func TestEncoderBaseFramesLarger(t *testing.T) {
	src := NewSource(64, 48, 2)
	e := NewEncoder(Mode28FPS, units.Mbps, 1)
	var base, enh float64
	var nb, ne int
	for i := 0; i < 100; i++ {
		ef := e.Encode(src.Next(), 0)
		if ef.Layer == rtp.LayerBase {
			base += float64(ef.Bytes)
			nb++
		} else {
			enh += float64(ef.Bytes)
			ne++
		}
	}
	if base/float64(nb) <= enh/float64(ne) {
		t.Fatal("base frames should be larger than enhancement frames")
	}
}

func TestEncoderSkipFramesOnlySkipsEnhancement(t *testing.T) {
	src := NewSource(64, 48, 2)
	e := NewEncoder(Mode28FPS, units.Mbps, 1)
	e.SkipFrames(2)
	var got []*EncodedFrame
	for i := 0; i < 8; i++ {
		if ef := e.Encode(src.Next(), 0); ef != nil {
			got = append(got, ef)
		}
	}
	if len(got) != 6 {
		t.Fatalf("got %d frames, want 6 (2 skipped)", len(got))
	}
	for _, ef := range got[:2] {
		if ef.Layer != rtp.LayerBase {
			// First two surviving frames around skips must include bases.
			break
		}
	}
	// All skipped frames were enhancement: count bases = 4 of 8 inputs.
	bases := 0
	for _, ef := range got {
		if ef.Layer == rtp.LayerBase {
			bases++
		}
	}
	if bases != 4 {
		t.Fatalf("bases = %d, want 4 (base never skipped)", bases)
	}
}

func TestEncoderRateFloor(t *testing.T) {
	e := NewEncoder(Mode28FPS, units.Mbps, 1)
	e.SetTargetRate(1) // absurd
	if e.TargetRate() < 30*units.Kbps {
		t.Fatal("rate floor not applied")
	}
}

func TestEncoderQualityImprovesWithRate(t *testing.T) {
	src := NewSource(64, 48, 2)
	score := func(rate units.BitRate) float64 {
		e := NewEncoder(Mode28FPS, rate, 1)
		var sum float64
		n := 20
		for i := 0; i < n; i++ {
			ef := e.Encode(src.Next(), 0)
			sum += MustSSIM(ef.Source, ef.Decode())
		}
		return sum / float64(n)
	}
	low, high := score(150*units.Kbps), score(1500*units.Kbps)
	if high <= low {
		t.Fatalf("SSIM should improve with rate: low=%v high=%v", low, high)
	}
	if high < 0.8 || high > 0.999 {
		t.Errorf("high-rate SSIM %v out of plausible range", high)
	}
}

func TestAudioEncoder(t *testing.T) {
	e := NewAudioEncoder(40 * units.Kbps)
	s0 := e.Next(0)
	s1 := e.Next(AudioFrameInterval)
	if s0.Seq != 0 || s1.Seq != 1 {
		t.Fatal("seq")
	}
	if s0.Bytes != 100 { // 40kbps * 20ms / 8
		t.Fatalf("Bytes = %d, want 100", s0.Bytes)
	}
	if NewAudioEncoder(0).Rate <= 0 {
		t.Fatal("default rate")
	}
}

func TestJitterBufferOrdering(t *testing.T) {
	b := NewJitterBuffer(10*time.Millisecond, 100*time.Millisecond)
	mk := func(seq uint64, pts time.Duration) *EncodedFrame {
		return &EncodedFrame{Seq: seq, PTS: pts}
	}
	// Frames arriving out of order still release in PTS order.
	b.Push(mk(2, 66*time.Millisecond), 100*time.Millisecond)
	b.Push(mk(1, 33*time.Millisecond), 101*time.Millisecond)
	out := b.PopDue(10 * time.Second)
	if len(out) != 2 || out[0].Seq > out[1].Seq {
		t.Fatalf("release order wrong: %+v", out)
	}
}

func TestJitterBufferHoldsUntilRelease(t *testing.T) {
	b := NewJitterBuffer(20*time.Millisecond, 100*time.Millisecond)
	f := &EncodedFrame{Seq: 1, PTS: 0}
	rel := b.Push(f, 50*time.Millisecond)
	if rel < 50*time.Millisecond {
		t.Fatalf("release %v before arrival", rel)
	}
	if got := b.PopDue(rel - time.Millisecond); len(got) != 0 {
		t.Fatal("released early")
	}
	if got := b.PopDue(rel); len(got) != 1 {
		t.Fatal("not released on time")
	}
	if b.Depth() != 0 {
		t.Fatal("depth")
	}
}

func TestJitterBufferAdaptsToJitter(t *testing.T) {
	calm := NewJitterBuffer(5*time.Millisecond, 500*time.Millisecond)
	wild := NewJitterBuffer(5*time.Millisecond, 500*time.Millisecond)
	interval := 33 * time.Millisecond
	for i := 0; i < 300; i++ {
		pts := time.Duration(i) * interval
		calm.Push(&EncodedFrame{Seq: uint64(i), PTS: pts}, pts+10*time.Millisecond)
		jitter := time.Duration(i%5) * 12 * time.Millisecond
		wild.Push(&EncodedFrame{Seq: uint64(i), PTS: pts}, pts+10*time.Millisecond+jitter)
	}
	if wild.TargetDelay() <= calm.TargetDelay() {
		t.Fatalf("jittery stream should grow target: calm=%v wild=%v",
			calm.TargetDelay(), wild.TargetDelay())
	}
}

func TestJitterBufferLateFraction(t *testing.T) {
	b := NewJitterBuffer(0, 0)
	b.Push(&EncodedFrame{Seq: 0, PTS: 0}, 0)
	// Second frame arrives way late relative to timeline.
	b.Push(&EncodedFrame{Seq: 1, PTS: 33 * time.Millisecond}, 500*time.Millisecond)
	if b.LateFraction() <= 0 {
		t.Fatal("late fraction should be positive")
	}
	if _, ok := b.NextRelease(); !ok {
		t.Fatal("NextRelease")
	}
}

// Property: PopDue never returns a frame before its release time and
// always in nondecreasing release order.
func TestJitterBufferReleaseProperty(t *testing.T) {
	f := func(arrivalsMs []uint16) bool {
		b := NewJitterBuffer(10*time.Millisecond, 200*time.Millisecond)
		rels := map[uint64]time.Duration{}
		for i, a := range arrivalsMs {
			fr := &EncodedFrame{Seq: uint64(i), PTS: time.Duration(i) * 33 * time.Millisecond}
			rels[fr.Seq] = b.Push(fr, time.Duration(a)*time.Millisecond)
		}
		var now time.Duration
		prev := time.Duration(-1)
		for b.Depth() > 0 {
			now += 7 * time.Millisecond
			for _, fr := range b.PopDue(now) {
				r := rels[fr.Seq]
				if r > now || r < prev {
					return false
				}
				prev = r
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRendererJitterAndStalls(t *testing.T) {
	r := NewRenderer(1000000) // avoid SSIM cost; frames lack Source
	interval := 33 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		f := &EncodedFrame{Seq: uint64(i), PTS: time.Duration(i) * interval}
		r.Display(f, now)
		now += interval
	}
	// Perfect cadence: zero jitter, zero stalls.
	for _, j := range r.FrameJitterMS {
		if j != 0 {
			t.Fatalf("jitter = %v, want 0", j)
		}
	}
	if r.Stalls != 0 {
		t.Fatal("stalls on perfect stream")
	}
	// Now a big gap.
	f := &EncodedFrame{Seq: 99, PTS: 10 * interval}
	r.Display(f, now+time.Second)
	if r.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", r.Stalls)
	}
}

func TestRendererFrameRates(t *testing.T) {
	r := NewRenderer(1000000)
	// 30 frames in 1 second, then 10 in the next.
	now := time.Duration(0)
	for i := 0; i < 30; i++ {
		r.Display(&EncodedFrame{Seq: uint64(i), PTS: now}, now)
		now += time.Second / 30
	}
	for i := 0; i < 10; i++ {
		r.Display(&EncodedFrame{Seq: uint64(100 + i), PTS: now}, now)
		now += time.Second / 10
	}
	rates := r.FrameRates()
	if len(rates) < 2 {
		t.Fatalf("rates = %v", rates)
	}
	if rates[0] < 25 || rates[0] > 31 {
		t.Errorf("first-second rate = %v", rates[0])
	}
	if rates[1] > 15 {
		t.Errorf("second-second rate = %v", rates[1])
	}
}

func TestRendererSSIMScoring(t *testing.T) {
	src := NewSource(64, 48, 9)
	e := NewEncoder(Mode28FPS, units.Mbps, 1)
	r := NewRenderer(1)
	for i := 0; i < 4; i++ {
		ef := e.Encode(src.Next(), 0)
		r.Display(ef, time.Duration(i)*33*time.Millisecond)
	}
	if len(r.SSIMs) != 4 {
		t.Fatalf("SSIMs = %d", len(r.SSIMs))
	}
	for _, v := range r.SSIMs {
		if v <= 0 || v > 1 {
			t.Fatalf("SSIM out of range: %v", v)
		}
	}
}

func TestScreenSamplerFreezes(t *testing.T) {
	r := NewRenderer(1000000)
	var s ScreenSampler
	now := time.Duration(0)
	// Frame 0 displayed, sampled for 500ms (freeze), then frame 1.
	r.Display(&EncodedFrame{Seq: 0, PTS: 0}, now)
	for i := 0; i < 35; i++ { // 35 samples at 70fps = 500ms
		s.Sample(r, now)
		now += ScreenSampleInterval
	}
	r.Display(&EncodedFrame{Seq: 1, PTS: 33 * time.Millisecond}, now)
	for i := 0; i < 3; i++ {
		s.Sample(r, now)
		now += ScreenSampleInterval
	}
	rep := s.Freezes(100 * time.Millisecond)
	if rep.Frames != 2 {
		t.Fatalf("Frames = %d, want 2", rep.Frames)
	}
	if rep.Freezes != 1 {
		t.Fatalf("Freezes = %d, want 1", rep.Freezes)
	}
	if rep.LongestDwel < 400*time.Millisecond {
		t.Fatalf("LongestDwel = %v", rep.LongestDwel)
	}
}

func TestScreenSamplerInvalidBeforeFirstFrame(t *testing.T) {
	r := NewRenderer(1)
	var s ScreenSampler
	s.Sample(r, 0)
	if s.Samples[0].Valid {
		t.Fatal("sample before first display should be invalid")
	}
	rep := s.Freezes(time.Millisecond)
	if rep.Frames != 0 {
		t.Fatal("no frames expected")
	}
}

func TestPSNRIdentical(t *testing.T) {
	f := NewSource(64, 48, 1).Next()
	v, err := PSNR(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v, 1) {
		t.Fatalf("PSNR(f,f) = %v, want +Inf", v)
	}
}

func TestPSNRDecreasesWithNoise(t *testing.T) {
	f := NewSource(64, 48, 1).Next()
	prev := math.Inf(1)
	for _, sigma := range []float64{3, 10, 30} {
		ef := &EncodedFrame{Seq: f.Seq, NoiseSigma: sigma, Source: f}
		v, err := PSNR(f, ef.Decode())
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("PSNR not decreasing at sigma=%v: %v >= %v", sigma, v, prev)
		}
		if v < 10 || v > 60 {
			t.Fatalf("PSNR %v out of plausible dB range", v)
		}
		prev = v
	}
}

func TestPSNRMismatch(t *testing.T) {
	a, b := NewFrame(1, 8, 8), NewFrame(1, 4, 4)
	if _, err := PSNR(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPSNRTracksSSIM(t *testing.T) {
	// Both metrics must agree on ordering across rates.
	src := NewSource(64, 48, 5)
	f := src.Next()
	low := &EncodedFrame{Seq: f.Seq, NoiseSigma: 25, Source: f}
	high := &EncodedFrame{Seq: f.Seq, NoiseSigma: 6, Source: f}
	pl, _ := PSNR(f, low.Decode())
	ph, _ := PSNR(f, high.Decode())
	sl := MustSSIM(f, low.Decode())
	sh := MustSSIM(f, high.Decode())
	if (ph > pl) != (sh > sl) {
		t.Fatalf("metric ordering disagrees: psnr %v/%v ssim %v/%v", ph, pl, sh, sl)
	}
}

func TestAudioPlayout(t *testing.T) {
	p := NewAudioPlayout(60 * time.Millisecond)
	// On-time sample.
	if !p.OnArrival(0, 30*time.Millisecond) {
		t.Fatal("on-time sample concealed")
	}
	// Exactly at the deadline still plays.
	if !p.OnArrival(20*time.Millisecond, 80*time.Millisecond) {
		t.Fatal("deadline sample concealed")
	}
	// Late sample concealed.
	if p.OnArrival(40*time.Millisecond, 101*time.Millisecond) {
		t.Fatal("late sample played")
	}
	if p.Played != 2 || p.Concealed != 1 {
		t.Fatalf("counts: %d/%d", p.Played, p.Concealed)
	}
	if r := p.ConcealmentRate(); math.Abs(r-1.0/3) > 1e-9 {
		t.Fatalf("rate = %v", r)
	}
	if NewAudioPlayout(0).Delay != 60*time.Millisecond {
		t.Fatal("default delay")
	}
	var empty AudioPlayout
	if empty.ConcealmentRate() != 0 {
		t.Fatal("empty rate")
	}
}

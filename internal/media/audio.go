package media

import (
	"time"

	"athena/internal/units"
)

// AudioFrameInterval is the Opus-like packetization cadence: one audio
// sample (in the paper's terminology) every 20 ms.
const AudioFrameInterval = 20 * time.Millisecond

// AudioSample is one encoded audio unit. Audio "samples rarely span
// multiple packets" (§2), so sizes stay comfortably below one MTU.
type AudioSample struct {
	Seq   uint64
	PTS   time.Duration
	Bytes units.ByteCount
}

// AudioEncoder produces constant-bitrate Opus-like samples.
type AudioEncoder struct {
	Rate units.BitRate
	seq  uint64
}

// NewAudioEncoder creates an audio encoder; Zoom's audio stream sits near
// 40 kbps in Fig 8.
func NewAudioEncoder(rate units.BitRate) *AudioEncoder {
	if rate <= 0 {
		rate = 40 * units.Kbps
	}
	return &AudioEncoder{Rate: rate}
}

// Next produces the sample captured at pts.
func (e *AudioEncoder) Next(pts time.Duration) AudioSample {
	s := AudioSample{
		Seq:   e.seq,
		PTS:   pts,
		Bytes: units.BytesOver(e.Rate, AudioFrameInterval),
	}
	e.seq++
	return s
}

package media

import "time"

// AudioPlayout models the receiver's audio path: samples play on a strict
// 20 ms grid behind a fixed playout delay; a sample that misses its slot
// is concealed (packet-loss concealment) and its late arrival discarded.
// The paper measures audio quality "from the application side" [28] —
// concealment events are the application-visible damage.
type AudioPlayout struct {
	// Delay is the fixed playout delay behind capture time.
	Delay time.Duration

	Played    int
	Concealed int

	base      time.Duration
	baseValid bool
}

// NewAudioPlayout creates a playout line with the given delay (default
// 60 ms, a common conversational setting).
func NewAudioPlayout(delay time.Duration) *AudioPlayout {
	if delay <= 0 {
		delay = 60 * time.Millisecond
	}
	return &AudioPlayout{Delay: delay}
}

// OnArrival records a sample that arrived at the receiver at `arrival`
// with capture timestamp pts. It reports whether the sample made its slot.
func (a *AudioPlayout) OnArrival(pts, arrival time.Duration) bool {
	deadline := pts + a.Delay
	if arrival <= deadline {
		a.Played++
		return true
	}
	a.Concealed++
	return false
}

// ConcealmentRate reports the fraction of samples concealed.
func (a *AudioPlayout) ConcealmentRate() float64 {
	t := a.Played + a.Concealed
	if t == 0 {
		return 0
	}
	return float64(a.Concealed) / float64(t)
}

package media

import (
	"time"

	"athena/internal/stats"
)

// ScreenSampleRate is the paper's screen-capture cadence: 70 fps, slightly
// above the monitor refresh rate, so every displayed frame is observed.
const ScreenSampleRate = 70

// ScreenSampleInterval is the sampling period.
const ScreenSampleInterval = time.Second / ScreenSampleRate

// Renderer tracks what is "on screen" at the receiver and derives the
// user-centric QoE metrics of Fig 7: displayed frame rate, frame-level
// jitter, stalls, and SSIM picture quality.
type Renderer struct {
	// displayed frame history
	current     *EncodedFrame
	displayedAt time.Duration

	// Metrics accumulators.
	FrameJitterMS []float64 // per-frame |inter-display - inter-PTS| in ms
	SSIMs         []float64
	DisplayTimes  *stats.Series // one sample per displayed frame (value = frame seq)
	Stalls        int
	StallTime     time.Duration
	// MouthToEarMS is the capture-to-render delay per displayed frame —
	// the "long mouth-to-ear delay" QoE impairment §2 names as the cost
	// of jitter-buffer expansion.
	MouthToEarMS []float64

	lastPTS     time.Duration
	havePrev    bool
	lastDisplay time.Duration

	// SSIMEvery scores picture quality on every n-th frame to bound CPU;
	// 1 scores all frames.
	SSIMEvery int
	ssimSkip  int

	// StallThreshold: gap between consecutive displays that counts as a
	// stall. The paper flags frames on screen "longer than intended";
	// 2.5× the nominal interval at the lowest frame rate (7 fps) is used.
	StallThreshold time.Duration
}

// NewRenderer creates a renderer scoring SSIM on every ssimEvery-th frame.
func NewRenderer(ssimEvery int) *Renderer {
	if ssimEvery < 1 {
		ssimEvery = 1
	}
	return &Renderer{
		DisplayTimes:   stats.NewSeries("display"),
		SSIMEvery:      ssimEvery,
		StallThreshold: 360 * time.Millisecond, // 2.5 × (1s/7)
	}
}

// Display shows frame f at receiver time now.
func (r *Renderer) Display(f *EncodedFrame, now time.Duration) {
	if r.havePrev {
		gap := now - r.lastDisplay
		ptsGap := f.PTS - r.lastPTS
		j := gap - ptsGap
		if j < 0 {
			j = -j
		}
		r.FrameJitterMS = append(r.FrameJitterMS, float64(j)/float64(time.Millisecond))
		if gap > r.StallThreshold {
			r.Stalls++
			r.StallTime += gap - r.StallThreshold
		}
	}
	r.current = f
	r.displayedAt = now
	r.lastDisplay = now
	r.lastPTS = f.PTS
	r.havePrev = true
	r.DisplayTimes.Add(now, float64(f.Seq))
	r.MouthToEarMS = append(r.MouthToEarMS, float64(now-f.PTS)/float64(time.Millisecond))

	r.ssimSkip++
	if r.ssimSkip >= r.SSIMEvery {
		r.ssimSkip = 0
		if dec := f.Decode(); dec != nil {
			if v, err := SSIM(f.Source, dec); err == nil {
				r.SSIMs = append(r.SSIMs, v)
			}
		}
	}
}

// Current reports the frame on screen (nil before first display).
func (r *Renderer) Current() *EncodedFrame { return r.current }

// FrameRateSeries bins displayed frames into 1-second buckets and returns
// the per-second displayed frame rate.
func (r *Renderer) FrameRateSeries() []stats.Point {
	return r.DisplayTimes.Bin(time.Second, stats.Count)
}

// FrameRates returns the per-second frame-rate samples (the Fig 7c CDF
// input).
func (r *Renderer) FrameRates() []float64 {
	pts := r.FrameRateSeries()
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Y
	}
	return out
}

// ScreenSampler polls the renderer at 70 fps like the paper's screen
// capture, recording which frame is visible at each tick. Freezes are
// detected exactly as the paper does: a frame on screen for longer than
// its intended packetization time.
type ScreenSampler struct {
	Samples []ScreenSample
}

// ScreenSample is one screen-capture observation.
type ScreenSample struct {
	At       time.Duration
	FrameSeq uint64
	Valid    bool // false before any frame has been displayed
}

// Sample records the currently displayed frame.
func (s *ScreenSampler) Sample(r *Renderer, now time.Duration) {
	smp := ScreenSample{At: now}
	if f := r.Current(); f != nil {
		smp.FrameSeq = f.Seq
		smp.Valid = true
	}
	s.Samples = append(s.Samples, smp)
}

// FreezeReport summarizes on-screen dwell analysis from the samples.
type FreezeReport struct {
	Frames      int           // distinct frames observed
	Freezes     int           // dwells exceeding the threshold
	LongestDwel time.Duration // longest single dwell
}

// Freezes scans the samples for frames that stayed on screen longer than
// threshold.
func (s *ScreenSampler) Freezes(threshold time.Duration) FreezeReport {
	var rep FreezeReport
	var curSeq uint64
	var curStart time.Duration
	started := false
	flush := func(end time.Duration) {
		if !started {
			return
		}
		dwell := end - curStart
		rep.Frames++
		if dwell > threshold {
			rep.Freezes++
		}
		if dwell > rep.LongestDwel {
			rep.LongestDwel = dwell
		}
	}
	for _, smp := range s.Samples {
		if !smp.Valid {
			continue
		}
		if !started || smp.FrameSeq != curSeq {
			flush(smp.At)
			curSeq = smp.FrameSeq
			curStart = smp.At
			started = true
		}
	}
	if len(s.Samples) > 0 {
		flush(s.Samples[len(s.Samples)-1].At)
	}
	return rep
}

package media

import "math"

// PSNR computes the peak signal-to-noise ratio (dB) between two frames of
// equal size — the second standard picture-quality metric alongside SSIM.
// Identical frames return +Inf.
func PSNR(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H || len(a.Pix) == 0 {
		return 0, ErrSSIMMismatch
	}
	var sse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sse += d * d
	}
	mse := sse / float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

package media

import (
	"math"
	"math/rand"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

// Mode selects the temporal-SVC configuration the paper observed in Zoom:
// a base layer at 14 fps plus a high-FPS enhancement layer reaching 28 fps,
// or a base layer at 7 fps plus a low-FPS enhancement layer reaching 14 fps.
type Mode uint8

// Temporal modes.
const (
	Mode28FPS Mode = iota // base 14 fps + High-FPS enhancement = 28 fps
	Mode14FPS             // base 7 fps + Low-FPS enhancement = 14 fps
)

// FPS reports the full frame rate of the mode.
func (m Mode) FPS() int {
	if m == Mode14FPS {
		return 14
	}
	return 28
}

// BaseFPS reports the base-layer frame rate of the mode.
func (m Mode) BaseFPS() int { return m.FPS() / 2 }

// Interval reports the frame period of the mode.
func (m Mode) Interval() time.Duration {
	return time.Duration(float64(time.Second) / float64(m.FPS()))
}

// EncodedFrame is the encoder's output for one video frame.
type EncodedFrame struct {
	Seq        uint64 // source frame sequence (QR-code stand-in)
	PTS        time.Duration
	Layer      rtp.SVCLayer
	Bytes      units.ByteCount
	NoiseSigma float64 // quantization-distortion model parameter
	// Source is the pristine frame, retained so the receiver can
	// reconstruct and score SSIM (the paper compares each received frame
	// with the corresponding sent frame).
	Source *Frame
}

// Encoder models a Zoom-like SVC video encoder: it consumes camera frames,
// assigns temporal layers, sizes each P-frame to track the target bitrate,
// and records the distortion the chosen rate implies.
//
// VCAs "typically do not use I-frames but rather transmit all video as a
// series of P-frames" (§5.2); frame sizes therefore vary only mildly, with
// base-layer frames (referenced by others) somewhat larger.
type Encoder struct {
	mode       Mode
	target     units.BitRate
	rng        *rand.Rand
	frameIdx   uint64
	skipBudget int // enhancement frames to skip (transient jitter response)

	// refBPP is the bits-per-pixel at which NoiseSigma equals sigmaRef;
	// distortion scales as (refBPP/bpp)^distortionExp.
	refBPP float64
}

// Distortion model calibration: at refRate for a 64×48 stream the model
// yields sigmaRef, which lands SSIM in the high 0.8s on the synthetic
// source, matching the upper end of Fig 7d.
const (
	sigmaRef      = 11.0
	refRateKbps   = 1000.0
	distortionExp = 0.35
	minFrameBytes = 120
)

// NewEncoder creates an encoder at the given initial mode and rate.
func NewEncoder(mode Mode, target units.BitRate, seed int64) *Encoder {
	e := &Encoder{mode: mode, target: target, rng: rand.New(rand.NewSource(seed))}
	return e
}

// SetTargetRate updates the video bitrate target (from congestion control).
func (e *Encoder) SetTargetRate(r units.BitRate) {
	if r < 30*units.Kbps {
		r = 30 * units.Kbps
	}
	e.target = r
}

// TargetRate reports the current video bitrate target.
func (e *Encoder) TargetRate() units.BitRate { return e.target }

// SetMode switches the temporal-SVC configuration (the "more permanent"
// adaptation of Fig 8).
func (e *Encoder) SetMode(m Mode) { e.mode = m }

// Mode reports the current temporal configuration.
func (e *Encoder) Mode() Mode { return e.mode }

// SkipFrames requests that the next n enhancement-layer frames be dropped
// before encoding — the transient adaptation the paper observed reduce
// Zoom to ~20 fps under jitter.
func (e *Encoder) SkipFrames(n int) {
	if n > 0 {
		e.skipBudget += n
	}
}

// Encode consumes the next camera frame and returns its encoded form, or
// nil if the frame was skipped (enhancement skip or layer cadence). pts is
// the frame's capture time.
func (e *Encoder) Encode(src *Frame, pts time.Duration) *EncodedFrame {
	idx := e.frameIdx
	e.frameIdx++

	// Temporal layering: even frames are base, odd frames enhancement.
	layer := rtp.LayerHighFPSEnhancement
	if e.mode == Mode14FPS {
		layer = rtp.LayerLowFPSEnhancement
	}
	isBase := idx%2 == 0
	if isBase {
		layer = rtp.LayerBase
	} else if e.skipBudget > 0 {
		e.skipBudget--
		return nil
	}

	fps := float64(e.mode.FPS())
	meanBytes := float64(e.target) / 8 / fps
	// Base frames carry more bits (they are reference frames); the pair
	// averages to the target.
	factor := 0.7
	if isBase {
		factor = 1.3
	}
	// Mild content-driven size variation (±10%).
	factor *= 1 + (e.rng.Float64()-0.5)*0.2
	size := meanBytes * factor
	if size < minFrameBytes {
		size = minFrameBytes
	}

	// Distortion: bits/pixel relative to the calibration point.
	pixels := float64(src.W * src.H)
	bpp := size * 8 / pixels
	refBPP := refRateKbps * 1000 / 8 / fps * 8 / pixels // bytes→bits cancel; keep explicit
	sigma := sigmaRef * math.Pow(refBPP/bpp, distortionExp)

	return &EncodedFrame{
		Seq:        src.Seq,
		PTS:        pts,
		Layer:      layer,
		Bytes:      units.ByteCount(size),
		NoiseSigma: sigma,
		Source:     src,
	}
}

// Decode reconstructs the frame the receiver would display: the source
// content distorted by the encoder's quantization noise. The noise RNG is
// keyed by frame sequence so repeated decodes are deterministic.
func (ef *EncodedFrame) Decode() *Frame {
	out := ef.Source.Clone()
	rng := rand.New(rand.NewSource(int64(ef.Seq)*2654435761 + 17))
	for i := range out.Pix {
		v := float64(out.Pix[i]) + rng.NormFloat64()*ef.NoiseSigma
		out.Pix[i] = clamp8(v)
	}
	return out
}

package media

import "errors"

// SSIM constants from Wang et al., "Image Quality Assessment: From Error
// Visibility to Structural Similarity", IEEE TIP 2004, for 8-bit images.
const (
	ssimK1 = 0.01
	ssimK2 = 0.03
	ssimL  = 255
)

// ssimWindow is the side of the square sliding window. The reference
// implementation uses an 11×11 Gaussian; the common fast variant uses an
// 8×8 uniform window, which we adopt (the paper's absolute SSIM values are
// not reproduction targets, only their ordering).
const ssimWindow = 8

// ssimStride moves the window 4 pixels at a time, the standard speedup.
const ssimStride = 4

// ErrSSIMMismatch reports incompatible frame geometry.
var ErrSSIMMismatch = errors.New("media: SSIM frames differ in size or are too small")

// SSIM computes the mean structural similarity between two frames of equal
// size. Result is in [-1, 1]; 1 means identical.
func SSIM(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H || a.W < ssimWindow || a.H < ssimWindow {
		return 0, ErrSSIMMismatch
	}
	c1 := (ssimK1 * ssimL) * (ssimK1 * ssimL)
	c2 := (ssimK2 * ssimL) * (ssimK2 * ssimL)

	var sum float64
	var windows int
	for y := 0; y+ssimWindow <= a.H; y += ssimStride {
		for x := 0; x+ssimWindow <= a.W; x += ssimStride {
			var sa, sb, saa, sbb, sab float64
			for j := 0; j < ssimWindow; j++ {
				rowA := a.Pix[(y+j)*a.W+x:]
				rowB := b.Pix[(y+j)*b.W+x:]
				for i := 0; i < ssimWindow; i++ {
					va := float64(rowA[i])
					vb := float64(rowB[i])
					sa += va
					sb += vb
					saa += va * va
					sbb += vb * vb
					sab += va * vb
				}
			}
			n := float64(ssimWindow * ssimWindow)
			muA := sa / n
			muB := sb / n
			varA := saa/n - muA*muA
			varB := sbb/n - muB*muB
			cov := sab/n - muA*muB
			num := (2*muA*muB + c1) * (2*cov + c2)
			den := (muA*muA + muB*muB + c1) * (varA + varB + c2)
			sum += num / den
			windows++
		}
	}
	if windows == 0 {
		return 0, ErrSSIMMismatch
	}
	return sum / float64(windows), nil
}

// MustSSIM is SSIM for callers that already validated geometry.
func MustSSIM(a, b *Frame) float64 {
	v, err := SSIM(a, b)
	if err != nil {
		panic(err)
	}
	return v
}

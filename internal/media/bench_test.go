package media

import (
	"testing"
	"time"

	"athena/internal/units"
)

func BenchmarkSSIM64x48(b *testing.B) {
	src := NewSource(64, 48, 1)
	f := src.Next()
	ef := &EncodedFrame{Seq: f.Seq, NoiseSigma: 10, Source: f}
	g := ef.Decode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustSSIM(f, g)
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	src := NewSource(64, 48, 1)
	e := NewEncoder(Mode28FPS, units.Mbps, 1)
	frames := make([]*Frame, 64)
	for i := range frames {
		frames[i] = src.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(frames[i%len(frames)], time.Duration(i)*33*time.Millisecond)
	}
}

func BenchmarkJitterBuffer(b *testing.B) {
	jb := NewJitterBuffer(10*time.Millisecond, 200*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := time.Duration(i) * 33 * time.Millisecond
		jb.Push(&EncodedFrame{Seq: uint64(i), PTS: pts}, pts+15*time.Millisecond)
		jb.PopDue(pts + 40*time.Millisecond)
	}
}

package media

import (
	"container/heap"
	"time"
)

// JitterBuffer smooths frame-arrival jitter before playout: each completed
// frame is held until sendPTS + playout delay has elapsed on the
// receiver's timeline. The buffer adapts its target delay to the observed
// arrival jitter, trading mouth-to-ear delay against stalls — the second
// of the three VCA options the paper lays out in §2.
type JitterBuffer struct {
	// MinDelay and MaxDelay bound the adaptive playout delay.
	MinDelay, MaxDelay time.Duration

	target    time.Duration
	base      time.Duration // playout timeline anchor: arrival - PTS baseline
	baseValid bool
	jitterEst float64 // smoothed |arrival - expected| in ns
	q         frameHeap
	late      int
	total     int
}

// NewJitterBuffer creates a buffer with the given delay bounds.
func NewJitterBuffer(min, max time.Duration) *JitterBuffer {
	if max < min {
		max = min
	}
	return &JitterBuffer{MinDelay: min, MaxDelay: max, target: min}
}

// queued pairs a frame with its computed release time.
type queued struct {
	frame   *EncodedFrame
	release time.Duration
	idx     int
}

type frameHeap []*queued

func (h frameHeap) Len() int           { return len(h) }
func (h frameHeap) Less(i, j int) bool { return h[i].release < h[j].release }
func (h frameHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *frameHeap) Push(x any)        { q := x.(*queued); q.idx = len(*h); *h = append(*h, q) }
func (h *frameHeap) Pop() any {
	old := *h
	n := len(old)
	q := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return q
}

// Push inserts a frame that completed reassembly at arrival (receiver
// time) and returns the time at which it should be played out.
func (b *JitterBuffer) Push(f *EncodedFrame, arrival time.Duration) time.Duration {
	b.total++
	lateness := b.observe(f, arrival)
	b.adapt(lateness)
	release := b.base + f.PTS + b.target
	if release < arrival {
		// Frame arrived after its slot: play immediately (it rendered
		// late; the renderer scores the stall).
		release = arrival
		b.late++
	}
	heap.Push(&b.q, &queued{frame: f, release: release})
	return release
}

// observe updates the playout baseline and returns how late the frame is
// relative to the smooth timeline (negative = early).
func (b *JitterBuffer) observe(f *EncodedFrame, arrival time.Duration) time.Duration {
	offset := arrival - f.PTS
	if !b.baseValid {
		b.base = offset
		b.baseValid = true
		return 0
	}
	// Track the minimum offset (fastest path) with slow upward creep so
	// the baseline follows genuine path changes.
	if offset < b.base {
		b.base = offset
	} else {
		b.base += (offset - b.base) / 500
	}
	return offset - b.base
}

// adapt updates the target delay toward ~2 standard deviations of observed
// lateness, within bounds.
func (b *JitterBuffer) adapt(lateness time.Duration) {
	l := float64(lateness)
	if l < 0 {
		l = 0
	}
	const alpha = 1.0 / 16
	b.jitterEst += (l - b.jitterEst) * alpha
	want := time.Duration(2 * b.jitterEst)
	if want < b.MinDelay {
		want = b.MinDelay
	}
	if want > b.MaxDelay {
		want = b.MaxDelay
	}
	b.target = want
}

// PopDue removes and returns all frames whose release time is <= now, in
// release order.
func (b *JitterBuffer) PopDue(now time.Duration) []*EncodedFrame {
	var out []*EncodedFrame
	for b.q.Len() > 0 && b.q[0].release <= now {
		q := heap.Pop(&b.q).(*queued)
		out = append(out, q.frame)
	}
	return out
}

// NextRelease reports the earliest pending release time, or ok=false if
// the buffer is empty.
func (b *JitterBuffer) NextRelease() (time.Duration, bool) {
	if b.q.Len() == 0 {
		return 0, false
	}
	return b.q[0].release, true
}

// TargetDelay reports the current adaptive playout delay.
func (b *JitterBuffer) TargetDelay() time.Duration { return b.target }

// Depth reports the number of buffered frames.
func (b *JitterBuffer) Depth() int { return b.q.Len() }

// LateFraction reports the fraction of frames that arrived after their
// playout slot.
func (b *JitterBuffer) LateFraction() float64 {
	if b.total == 0 {
		return 0
	}
	return float64(b.late) / float64(b.total)
}

// Package media models the application layer of the Athena testbed: the
// synthetic video the paper injects through a virtual camera (QR-annotated
// frames become sequence-stamped frames here), an SVC temporal-layer
// encoder with a bitrate→distortion model, Opus-like audio, the receiver's
// jitter buffer and renderer, a 70 fps screen sampler for stall detection,
// and full SSIM (Wang et al. 2004) for picture quality.
package media

import (
	"math"
	"math/rand"
)

// Frame is one uncompressed luma (grayscale) picture. Seq is the
// sequence stamp standing in for the paper's per-frame QR code.
type Frame struct {
	Seq  uint64
	W, H int
	Pix  []uint8 // row-major luma samples, len = W*H
}

// NewFrame allocates a black frame.
func NewFrame(seq uint64, w, h int) *Frame {
	return &Frame{Seq: seq, W: w, H: h, Pix: make([]uint8, w*h)}
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	g := &Frame{Seq: f.Seq, W: f.W, H: f.H, Pix: make([]uint8, len(f.Pix))}
	copy(g.Pix, f.Pix)
	return g
}

// At returns the sample at (x, y) without bounds checking.
func (f *Frame) At(x, y int) uint8 { return f.Pix[y*f.W+x] }

// Source generates deterministic synthetic video: a drifting sinusoidal
// texture plus mild per-frame detail, so consecutive frames differ a
// little (P-frame-friendly) and SSIM against a distorted copy is
// meaningful. The content is a stand-in for the paper's prerecorded talk
// video.
type Source struct {
	W, H int
	rng  *rand.Rand
	seq  uint64
}

// NewSource creates a frame source with the given dimensions. Small frames
// (e.g. 64×48) keep per-frame SSIM cheap while preserving the
// bitrate→quality relationship.
func NewSource(w, h int, seed int64) *Source {
	return &Source{W: w, H: h, rng: rand.New(rand.NewSource(seed))}
}

// Next produces the next frame in display order.
func (s *Source) Next() *Frame {
	f := NewFrame(s.seq, s.W, s.H)
	phase := float64(s.seq) * 0.13
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			// Smoothly moving texture: two crossed sinusoids.
			v := 128 +
				52*math.Sin(float64(x)*0.21+phase) +
				43*math.Cos(float64(y)*0.17-0.7*phase) +
				16*math.Sin(float64(x+y)*0.09+0.3*phase)
			// A little static detail so the image is not band-limited.
			v += float64(s.rng.Intn(11)) - 5
			f.Pix[y*s.W+x] = clamp8(v)
		}
	}
	s.seq++
	return f
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Package scream implements a simplified SCReAM congestion controller
// (Johansson, SIGCOMM CSWS 2014; RFC 8298): a self-clocked, window-based
// controller that keeps estimated queueing delay near a target.
//
// Simplifications (documented per DESIGN.md): the full RFC's send-window
// pacing, competing-flow compensation, and fast-start phases are folded
// into a single congestion-window law on the smoothed queue-delay
// fraction; the window converts to a rate via the smoothed RTT, which is
// what the simulated VCA consumes.
package scream

import (
	"time"

	"athena/internal/cc"
	"athena/internal/rtp"
	"athena/internal/units"
)

// Controller parameters.
const (
	qdelayTarget = 60 * time.Millisecond // RFC 8298 default target
	gainUp       = 1.0                   // window growth per clean RTT (MSS)
	betaLoss     = 0.8                   // multiplicative decrease on loss
	mss          = 1200                  // bytes
)

// Controller is the SCReAM sender.
type Controller struct {
	hist     cc.History
	min, max units.BitRate

	cwnd     float64 // bytes
	baseOWD  time.Duration
	haveBase bool
	srtt     time.Duration

	lastRate units.BitRate
}

var _ cc.Controller = (*Controller)(nil)

// New creates a SCReAM controller.
func New(initial, min, max units.BitRate) *Controller {
	c := &Controller{min: min, max: max, srtt: 50 * time.Millisecond}
	// Seed the window so cwnd/srtt equals the initial rate.
	c.cwnd = float64(initial) / 8 * c.srtt.Seconds()
	c.lastRate = initial
	return c
}

// Name implements cc.Controller.
func (c *Controller) Name() string { return "scream" }

// OnPacketSent implements cc.Controller.
func (c *Controller) OnPacketSent(seq uint16, size units.ByteCount, at time.Duration) {
	c.hist.Add(cc.SentPacket{Seq: seq, Size: size, SentAt: at})
}

// OnFeedback implements cc.Controller.
func (c *Controller) OnFeedback(fb *rtp.Feedback, now time.Duration) {
	var qdelaySum time.Duration
	n := 0
	lost := false
	var ackedBytes float64
	for _, rep := range fb.Reports {
		if !rep.Received {
			lost = true
			continue
		}
		sent, ok := c.hist.Get(rep.Seq)
		if !ok {
			continue
		}
		owd := rep.Arrival - sent.SentAt
		if !c.haveBase || owd < c.baseOWD {
			c.baseOWD = owd
			c.haveBase = true
		}
		qdelaySum += owd - c.baseOWD
		n++
		ackedBytes += float64(sent.Size)
		// Approximate RTT from OWD (feedback path is the low-jitter
		// direction in this testbed).
		rtt := 2 * owd
		c.srtt = time.Duration(0.9*float64(c.srtt) + 0.1*float64(rtt))
	}
	if n == 0 {
		return
	}
	qdelay := qdelaySum / time.Duration(n)

	switch {
	case lost:
		c.cwnd *= betaLoss
	case qdelay <= qdelayTarget:
		// Below target: grow proportionally to acked data, scaled by how
		// far below target we are.
		headroom := 1 - float64(qdelay)/float64(qdelayTarget)
		c.cwnd += gainUp * mss * headroom * (ackedBytes / c.cwnd)
	default:
		// Above target: shrink proportionally to the overshoot.
		over := float64(qdelay)/float64(qdelayTarget) - 1
		if over > 1 {
			over = 1
		}
		c.cwnd *= 1 - 0.2*over
	}
	if c.cwnd < 2*mss {
		c.cwnd = 2 * mss
	}
	rate := units.BitRate(c.cwnd * 8 / c.srtt.Seconds())
	c.lastRate = units.ClampRate(rate, c.min, c.max)
}

// TargetRate implements cc.Controller.
func (c *Controller) TargetRate() units.BitRate { return c.lastRate }

// QueueDelayTarget reports the configured target (diagnostics).
func (c *Controller) QueueDelayTarget() time.Duration { return qdelayTarget }

package scream

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func drive(c *Controller, n int, owd func(i int) time.Duration, recv func(i int) bool) {
	var fb *rtp.Feedback
	for i := 0; i < n; i++ {
		seq := uint16(i)
		send := time.Duration(i) * 20 * time.Millisecond
		c.OnPacketSent(seq, 1200, send)
		if fb == nil {
			fb = &rtp.Feedback{SSRC: 1}
		}
		ok := recv == nil || recv(i)
		ai := rtp.ArrivalInfo{Seq: seq, Received: ok}
		if ok {
			ai.Arrival = send + owd(i)
		}
		fb.Reports = append(fb.Reports, ai)
		if len(fb.Reports) == 5 {
			c.OnFeedback(fb, send+100*time.Millisecond)
			fb = nil
		}
	}
}

func TestSCReAMGrowsBelowTarget(t *testing.T) {
	c := New(300*units.Kbps, 50*units.Kbps, 5*units.Mbps)
	drive(c, 500, func(int) time.Duration { return 15 * time.Millisecond }, nil)
	if c.TargetRate() <= 300*units.Kbps {
		t.Fatalf("rate did not grow: %v", c.TargetRate())
	}
}

func TestSCReAMShrinksAboveTarget(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	drive(c, 300, func(i int) time.Duration {
		if i < 10 {
			return 15 * time.Millisecond
		}
		return 15*time.Millisecond + c.QueueDelayTarget()*3
	}, nil)
	if c.TargetRate() >= units.Mbps {
		t.Fatalf("rate did not shrink: %v", c.TargetRate())
	}
}

func TestSCReAMLossDecrease(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	drive(c, 200, func(int) time.Duration { return 15 * time.Millisecond },
		func(i int) bool { return i%4 != 0 })
	if c.TargetRate() >= units.Mbps {
		t.Fatalf("loss did not shrink rate: %v", c.TargetRate())
	}
}

func TestSCReAMWindowFloor(t *testing.T) {
	c := New(100*units.Kbps, 10*units.Kbps, 5*units.Mbps)
	drive(c, 400, func(int) time.Duration { return time.Second }, nil)
	if c.cwnd < 2*mss {
		t.Fatalf("cwnd below floor: %v", c.cwnd)
	}
	if c.TargetRate() < 10*units.Kbps {
		t.Fatalf("rate below min: %v", c.TargetRate())
	}
}

func TestSCReAMEmptyFeedback(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	r0 := c.TargetRate()
	c.OnFeedback(&rtp.Feedback{}, time.Second)
	if c.TargetRate() != r0 {
		t.Fatal("empty feedback changed rate")
	}
	if c.Name() != "scream" {
		t.Fatal("name")
	}
}

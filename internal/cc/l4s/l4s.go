// Package l4s implements an L4S-style scalable congestion controller
// (RFC 9330/9331; cf. ABC): the network marks ECN-capable packets CE when
// its queue exceeds a shallow threshold, and the sender adjusts its rate
// every feedback interval proportionally to the CE-mark fraction —
// "accelerate or brake" — rather than inferring congestion from delay.
//
// §5.3 raises the open question of how such marking should treat
// RAN-induced delay that is *not* congestion (HARQ, scheduling): because
// the mark is applied at the queue, not the latency signal, L4S is
// naturally blind to delay spikes that do not involve standing queues —
// which is exactly the property benchmark M4 measures.
package l4s

import (
	"time"

	"athena/internal/cc"
	"athena/internal/rtp"
	"athena/internal/units"
)

// Control parameters (Prague-flavored).
const (
	betaCE  = 0.5             // max multiplicative decrease at 100% marking per RTT
	addIncr = 20 * units.Kbps // additive increase per clean feedback interval
)

// Controller is the L4S sender.
type Controller struct {
	rate     units.BitRate
	min, max units.BitRate

	// MarkFraction is the smoothed CE fraction (diagnostics).
	MarkFraction float64
}

var _ cc.Controller = (*Controller)(nil)

// New creates an L4S controller.
func New(initial, min, max units.BitRate) *Controller {
	return &Controller{rate: initial, min: min, max: max}
}

// Name implements cc.Controller.
func (c *Controller) Name() string { return "l4s" }

// OnPacketSent implements cc.Controller (no send state needed).
func (c *Controller) OnPacketSent(uint16, units.ByteCount, time.Duration) {}

// OnFeedback implements cc.Controller: scale down with the CE fraction,
// probe up additively when unmarked.
func (c *Controller) OnFeedback(fb *rtp.Feedback, now time.Duration) {
	ce, recv := 0, 0
	for _, r := range fb.Reports {
		if !r.Received {
			continue
		}
		recv++
		if r.ECE {
			ce++
		}
	}
	if recv == 0 {
		return
	}
	p := float64(ce) / float64(recv)
	c.MarkFraction = 0.8*c.MarkFraction + 0.2*p
	if p > 0 {
		c.rate = units.BitRate(float64(c.rate) * (1 - betaCE*p/2))
	} else {
		c.rate += addIncr
	}
	c.rate = units.ClampRate(c.rate, c.min, c.max)
}

// TargetRate implements cc.Controller.
func (c *Controller) TargetRate() units.BitRate { return c.rate }

package l4s

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func fb(ce, clean int) *rtp.Feedback {
	f := &rtp.Feedback{SSRC: 1}
	for i := 0; i < ce; i++ {
		f.Reports = append(f.Reports, rtp.ArrivalInfo{Seq: uint16(i), Received: true, ECE: true})
	}
	for i := 0; i < clean; i++ {
		f.Reports = append(f.Reports, rtp.ArrivalInfo{Seq: uint16(100 + i), Received: true})
	}
	return f
}

func TestBrakeOnCE(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	c.OnFeedback(fb(10, 0), time.Second) // 100% marked
	want := units.BitRate(float64(units.Mbps) * 0.75)
	if c.TargetRate() != want {
		t.Fatalf("rate = %v, want %v", c.TargetRate(), want)
	}
	if c.MarkFraction <= 0 {
		t.Fatal("mark fraction not tracked")
	}
}

func TestProportionalBrake(t *testing.T) {
	full := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	half := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	full.OnFeedback(fb(10, 0), time.Second)
	half.OnFeedback(fb(5, 5), time.Second)
	if half.TargetRate() <= full.TargetRate() {
		t.Fatalf("50%% marking should brake less than 100%%: %v vs %v",
			half.TargetRate(), full.TargetRate())
	}
}

func TestAccelerateWhenClean(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	c.OnFeedback(fb(0, 10), time.Second)
	if c.TargetRate() <= units.Mbps {
		t.Fatalf("clean feedback should accelerate: %v", c.TargetRate())
	}
}

func TestDelaySpikesWithoutMarksIgnored(t *testing.T) {
	// The M4 property: delay inflation without queue marks (HARQ retx)
	// does not brake the sender.
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	f := &rtp.Feedback{Reports: []rtp.ArrivalInfo{
		{Seq: 1, Received: true, Arrival: 10 * time.Second}, // huge delay, no CE
	}}
	c.OnFeedback(f, time.Second)
	if c.TargetRate() < units.Mbps {
		t.Fatalf("unmarked delay spike braked the sender: %v", c.TargetRate())
	}
}

func TestEmptyFeedbackNoChange(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	c.OnFeedback(&rtp.Feedback{Reports: []rtp.ArrivalInfo{{Seq: 1, Received: false}}}, time.Second)
	if c.TargetRate() != units.Mbps {
		t.Fatal("loss-only feedback changed rate")
	}
	if c.Name() != "l4s" {
		t.Fatal("name")
	}
	c.OnPacketSent(0, 0, 0)
}

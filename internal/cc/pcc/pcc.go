// Package pcc implements a PCC-Vivace-style online-learning congestion
// controller (Dong et al., NSDI 2015/2018) — the class of
// "machine-learning-based approaches" the paper's §1 cites and then
// cautions about: "we show here that they still largely see a clouded
// view of packet arrivals."
//
// The sender alternates monitor intervals at rate r(1±ε), attributes
// every observation to the interval the packet was *sent* in, computes a
// Vivace utility per interval (throughput, latency gradient, loss), and
// steps the base rate along the empirical utility gradient. No model of
// the network is assumed — which is exactly why RAN-induced latency
// sawteeth masquerade as utility gradients and keep the learner chasing
// phantoms (study S3).
//
// Simplifications relative to full Vivace (documented per DESIGN.md):
// fixed wall-clock monitor intervals instead of RTT-scaled ones, a single
// ε, and a bounded constant-step gradient ascent instead of the
// confidence-amplified dual-rate controller.
package pcc

import (
	"math"
	"time"

	"athena/internal/cc"
	"athena/internal/rtp"
	"athena/internal/units"
)

// Vivace utility parameters: U(r) = thr^exponent − bLatency·thr·(dL/dt)⁺
// − cLoss·thr·loss.
const (
	utilityExponent = 0.9
	bLatency        = 900.0
	cLoss           = 11.35
	epsilon         = 0.10                   // probe amplitude (wide: VCA frame-size noise is large)
	stepFraction    = 0.1                    // max relative rate change per decision
	miDuration      = 200 * time.Millisecond // several frames per MI to average out SVC size alternation
	// finalizeGrace is how long after a window closes we wait for its
	// stragglers before computing its utility.
	finalizeGrace = 150 * time.Millisecond
)

// mi accumulates one monitor interval's observations.
type mi struct {
	ackedBytes float64
	lost, recv int
	// latency regression accumulators
	n, sx, sy, sxx, sxy float64
}

func (m *mi) addLatency(atMS, owdMS float64) {
	m.n++
	m.sx += atMS
	m.sy += owdMS
	m.sxx += atMS * atMS
	m.sxy += atMS * owdMS
}

// latencySlope is d(owd)/dt over the interval (ms per ms).
func (m *mi) latencySlope() float64 {
	if m.n < 2 {
		return 0
	}
	den := m.n*m.sxx - m.sx*m.sx
	if den == 0 {
		return 0
	}
	return (m.n*m.sxy - m.sx*m.sy) / den
}

// lossRate is the interval's loss fraction.
func (m *mi) lossRate() float64 {
	t := m.lost + m.recv
	if t == 0 {
		return 0
	}
	return float64(m.lost) / float64(t)
}

// utility computes the Vivace utility for the interval.
func (m *mi) utility() float64 {
	thrMbps := m.ackedBytes * 8 / miDuration.Seconds() / 1e6
	grad := m.latencySlope()
	if grad < 0 {
		grad = 0
	}
	return math.Pow(thrMbps, utilityExponent) - bLatency*thrMbps*grad - cLoss*thrMbps*m.lossRate()
}

// Controller is the PCC-Vivace-style sender.
type Controller struct {
	hist     cc.History
	base     units.BitRate // rate around which the pair probes
	min, max units.BitRate

	// sendPhase of a packet is derived from its send time: even
	// miDuration windows probe up, odd probe down.
	curWindow int64 // advanced by OnPacketSent

	windows   map[int64]*mi
	utilities map[int64]float64

	// Decisions counts completed probe pairs (diagnostics), and
	// DownDecisions those that stepped the rate down — on a path with
	// capacity headroom, every one of them is the learner misreading an
	// artifact as congestion.
	Decisions     int
	DownDecisions int
	// RateTrace records the base rate (kbps) at each decision, for S3's
	// oscillation measurement.
	RateTrace []float64
}

var _ cc.Controller = (*Controller)(nil)

// New creates a controller probing around initial.
func New(initial, min, max units.BitRate) *Controller {
	return &Controller{
		base:      initial,
		min:       min,
		max:       max,
		windows:   make(map[int64]*mi),
		utilities: make(map[int64]float64),
	}
}

// Name implements cc.Controller.
func (c *Controller) Name() string { return "pcc-vivace" }

// windowOf maps a send time to its monitor-interval index.
func windowOf(at time.Duration) int64 { return int64(at / miDuration) }

// OnPacketSent implements cc.Controller.
func (c *Controller) OnPacketSent(seq uint16, size units.ByteCount, at time.Duration) {
	c.hist.Add(cc.SentPacket{Seq: seq, Size: size, SentAt: at})
	if w := windowOf(at); w > c.curWindow {
		c.curWindow = w
	}
}

// OnFeedback implements cc.Controller: attribute arrivals to their send
// windows, finalize windows past the grace period, and take a gradient
// step whenever an up/down pair completes.
func (c *Controller) OnFeedback(fb *rtp.Feedback, now time.Duration) {
	for _, rep := range fb.Reports {
		sent, ok := c.hist.Get(rep.Seq)
		if !ok {
			continue
		}
		w := windowOf(sent.SentAt)
		m := c.windows[w]
		if m == nil {
			m = &mi{}
			c.windows[w] = m
		}
		if !rep.Received {
			m.lost++
			continue
		}
		m.recv++
		m.ackedBytes += float64(sent.Size)
		owdMS := float64(rep.Arrival-sent.SentAt) / float64(time.Millisecond)
		atMS := float64(rep.Arrival) / float64(time.Millisecond)
		m.addLatency(atMS, owdMS)
	}

	// Finalize closed windows and decide on completed pairs.
	for w, m := range c.windows {
		closeAt := time.Duration(w+1) * miDuration
		if now < closeAt+finalizeGrace {
			continue
		}
		c.utilities[w] = m.utility()
		delete(c.windows, w)
	}
	for w, uUp := range c.utilities {
		if w%2 != 0 {
			continue
		}
		uDn, ok := c.utilities[w+1]
		if !ok {
			continue
		}
		delete(c.utilities, w)
		delete(c.utilities, w+1)
		c.decide(uUp, uDn)
	}
	// Drop stale unpaired utilities (idle stream).
	for w := range c.utilities {
		if time.Duration(w+2)*miDuration+10*finalizeGrace < now {
			delete(c.utilities, w)
		}
	}
}

// decide takes the gradient step.
func (c *Controller) decide(uUp, uDn float64) {
	c.Decisions++
	gradSign := 0.0
	switch {
	case uUp > uDn:
		gradSign = 1
	case uDn > uUp:
		gradSign = -1
	}
	// Step proportional to the (normalized) utility difference, bounded.
	if gradSign < 0 {
		c.DownDecisions++
	}
	diff := math.Abs(uUp - uDn)
	scale := stepFraction * math.Min(1, diff)
	c.base = units.BitRate(float64(c.base) * (1 + gradSign*scale))
	c.base = units.ClampRate(c.base, c.min, c.max)
	c.RateTrace = append(c.RateTrace, float64(c.base)/1000)
}

// TargetRate implements cc.Controller: r(1+ε) in even send windows,
// r(1−ε) in odd ones.
func (c *Controller) TargetRate() units.BitRate {
	f := 1 + epsilon
	if c.curWindow%2 != 0 {
		f = 1 - epsilon
	}
	return units.ClampRate(units.BitRate(float64(c.base)*f), c.min, c.max)
}

package pcc

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

// drive feeds n packets at 10 ms spacing with the given OWD function,
// feedback every 50 ms. Packet sizes track the controller's probing rate
// so acked throughput responds to the rate, as it does for a real paced
// sender — without this, the utility gradient has nothing to learn from.
func drive(c *Controller, n int, owd func(i int) time.Duration, recv func(i int) bool) {
	var fb *rtp.Feedback
	for i := 0; i < n; i++ {
		seq := uint16(i)
		send := time.Duration(i) * 10 * time.Millisecond
		size := units.ByteCount(int64(c.TargetRate()) / 800) // rate × 10 ms / 8
		c.OnPacketSent(seq, size, send)
		if fb == nil {
			fb = &rtp.Feedback{SSRC: 1}
		}
		ok := recv == nil || recv(i)
		ai := rtp.ArrivalInfo{Seq: seq, Received: ok}
		if ok {
			ai.Arrival = send + owd(i)
		}
		fb.Reports = append(fb.Reports, ai)
		if len(fb.Reports) == 5 {
			c.OnFeedback(fb, send+50*time.Millisecond)
			fb = nil
		}
	}
}

func TestPCCGrowsOnCleanPath(t *testing.T) {
	c := New(500*units.Kbps, 100*units.Kbps, 5*units.Mbps)
	drive(c, 3000, func(int) time.Duration { return 15 * time.Millisecond }, nil)
	if c.Decisions < 10 {
		t.Fatalf("decisions = %d", c.Decisions)
	}
	if c.TargetRate() <= 500*units.Kbps {
		t.Fatalf("clean path: rate %v did not grow", c.TargetRate())
	}
}

func TestPCCBacksOffOnLatencyRamp(t *testing.T) {
	c := New(units.Mbps, 100*units.Kbps, 5*units.Mbps)
	// Queue building: OWD grows 1 ms per packet, forever.
	drive(c, 2000, func(i int) time.Duration {
		return 15*time.Millisecond + time.Duration(i)*time.Millisecond
	}, nil)
	if c.TargetRate() >= units.Mbps {
		t.Fatalf("latency ramp: rate %v did not shrink", c.TargetRate())
	}
}

func TestPCCPenalizesLoss(t *testing.T) {
	c := New(units.Mbps, 100*units.Kbps, 5*units.Mbps)
	drive(c, 2000, func(int) time.Duration { return 15 * time.Millisecond },
		func(i int) bool { return i%4 != 0 }) // 25% loss
	if c.TargetRate() >= units.Mbps {
		t.Fatalf("25%% loss: rate %v did not shrink", c.TargetRate())
	}
}

func TestPCCProbesAroundBase(t *testing.T) {
	c := New(units.Mbps, 100*units.Kbps, 5*units.Mbps)
	up := c.TargetRate() // window 0 probes up
	c.curWindow = 1
	dn := c.TargetRate()
	if up <= dn {
		t.Fatalf("probe pair not ordered: up=%v dn=%v", up, dn)
	}
	ratio := float64(up) / float64(dn)
	want := (1 + epsilon) / (1 - epsilon)
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Fatalf("probe ratio %v, want %v", ratio, want)
	}
}

// The paper's §1 claim at unit scale: RAN-style sawtooth latency (no real
// queue) makes the learner oscillate more than on a clean path.
func TestPCCOscillatesOnRANSawtooth(t *testing.T) {
	variance := func(owd func(i int) time.Duration) float64 {
		c := New(units.Mbps, 100*units.Kbps, 5*units.Mbps)
		drive(c, 5000, owd, nil)
		if len(c.RateTrace) < 10 {
			t.Fatalf("trace = %d", len(c.RateTrace))
		}
		// Variance of per-decision relative steps.
		var mean, m2 float64
		steps := make([]float64, 0, len(c.RateTrace)-1)
		for i := 1; i < len(c.RateTrace); i++ {
			steps = append(steps, (c.RateTrace[i]-c.RateTrace[i-1])/c.RateTrace[i-1])
		}
		for _, s := range steps {
			mean += s
		}
		mean /= float64(len(steps))
		for _, s := range steps {
			m2 += (s - mean) * (s - mean)
		}
		return m2 / float64(len(steps))
	}
	clean := variance(func(int) time.Duration { return 15 * time.Millisecond })
	saw := variance(func(i int) time.Duration {
		return 5*time.Millisecond + time.Duration(i%25)*1200*time.Microsecond
	})
	if saw <= clean {
		t.Fatalf("sawtooth should raise decision variance: clean=%v saw=%v", clean, saw)
	}
}

func TestPCCMonitorIntervalStats(t *testing.T) {
	var m mi
	// OWD rising 1 ms per ms of arrival time.
	for i := 0; i < 10; i++ {
		m.addLatency(float64(i), float64(i))
	}
	if s := m.latencySlope(); s < 0.99 || s > 1.01 {
		t.Fatalf("slope = %v, want 1", s)
	}
	m.lost, m.recv = 1, 3
	if m.lossRate() != 0.25 {
		t.Fatalf("lossRate = %v", m.lossRate())
	}
	var empty mi
	if empty.latencySlope() != 0 || empty.lossRate() != 0 {
		t.Fatal("empty interval stats should be zero")
	}
}

func TestPCCName(t *testing.T) {
	if New(1, 1, 1).Name() != "pcc-vivace" {
		t.Fatal("name")
	}
}

package cc

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func TestHistoryRoundTrip(t *testing.T) {
	var h History
	h.Add(SentPacket{Seq: 5, Size: 1200, SentAt: time.Millisecond})
	p, ok := h.Get(5)
	if !ok || p.Size != 1200 {
		t.Fatalf("Get: %+v %v", p, ok)
	}
	if _, ok := h.Get(6); ok {
		t.Fatal("missing seq found")
	}
}

func TestHistoryCollisionDetected(t *testing.T) {
	var h History
	h.Add(SentPacket{Seq: 1, Size: 100})
	// Seq 1+4096 maps to the same slot; after overwrite, Get(1) must miss.
	h.Add(SentPacket{Seq: 1 + 4096, Size: 200})
	if _, ok := h.Get(1); ok {
		t.Fatal("stale entry returned after collision")
	}
	p, ok := h.Get(1 + 4096)
	if !ok || p.Size != 200 {
		t.Fatal("new entry lost")
	}
}

func TestHistoryWrapsSeq(t *testing.T) {
	var h History
	for seq := uint16(65530); seq != 10; seq++ {
		h.Add(SentPacket{Seq: seq, Size: units.ByteCount(seq)})
	}
	for seq := uint16(65530); seq != 10; seq++ {
		if p, ok := h.Get(seq); !ok || p.Size != units.ByteCount(seq) {
			t.Fatalf("seq %d lost across wrap", seq)
		}
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(500 * time.Millisecond)
	// 62500 bytes over 500ms = 1 Mbps.
	for i := 0; i < 50; i++ {
		w.Add(time.Duration(i)*10*time.Millisecond, 1250)
	}
	got := w.Rate(500 * time.Millisecond)
	if got < 900*units.Kbps || got > 1100*units.Kbps {
		t.Fatalf("Rate = %v, want ~1Mbps", got)
	}
	// Much later, the window is empty.
	if w.Rate(10*time.Second) != 0 {
		t.Fatal("stale events not trimmed")
	}
}

func TestRateWindowDefault(t *testing.T) {
	if NewRateWindow(0).Window != 500*time.Millisecond {
		t.Fatal("default window")
	}
}

func TestLossEstimator(t *testing.T) {
	var l LossEstimator
	fb := &rtp.Feedback{Reports: []rtp.ArrivalInfo{
		{Seq: 1, Received: true}, {Seq: 2, Received: false},
	}}
	l.Update(fb)
	if l.Fraction() <= 0 || l.Fraction() > 0.5 {
		t.Fatalf("Fraction = %v", l.Fraction())
	}
	// All-received reports decay it.
	clean := &rtp.Feedback{Reports: []rtp.ArrivalInfo{{Seq: 3, Received: true}}}
	before := l.Fraction()
	for i := 0; i < 10; i++ {
		l.Update(clean)
	}
	if l.Fraction() >= before {
		t.Fatal("fraction did not decay")
	}
	l.Update(&rtp.Feedback{}) // empty: no change, no panic
}

func TestMaskFeedback(t *testing.T) {
	fb := &rtp.Feedback{SSRC: 1, Reports: []rtp.ArrivalInfo{
		{Seq: 1, Received: true, Arrival: 100 * time.Millisecond},
		{Seq: 2, Received: false},
		{Seq: 3, Received: true, Arrival: 200 * time.Millisecond},
	}}
	masked := MaskFeedback(fb, func(seq uint16) (time.Duration, bool) {
		if seq == 1 {
			return 30 * time.Millisecond, true
		}
		return 0, false
	})
	if masked.Reports[0].Arrival != 70*time.Millisecond {
		t.Errorf("seq 1 arrival = %v", masked.Reports[0].Arrival)
	}
	if masked.Reports[2].Arrival != 200*time.Millisecond {
		t.Errorf("seq 3 should be untouched")
	}
	// Original untouched.
	if fb.Reports[0].Arrival != 100*time.Millisecond {
		t.Fatal("input mutated")
	}
}

func TestMaskFeedbackNilCases(t *testing.T) {
	if MaskFeedback(nil, nil) != nil {
		t.Fatal("nil in, nil out")
	}
	fb := &rtp.Feedback{Reports: []rtp.ArrivalInfo{{Seq: 1, Received: true, Arrival: time.Second}}}
	out := MaskFeedback(fb, nil)
	if out.Reports[0].Arrival != time.Second {
		t.Fatal("nil adjuster should copy unchanged")
	}
}

package cc

import (
	"time"

	"athena/internal/rtp"
)

// MaskFeedback implements the §5.3 network-side mitigation: "the RAN could
// mask RAN-induced delays through the congestion-control feedback channel
// by modifying per-packet delay information as reported by ... RTCP
// transport-wide congestion-control messages."
//
// It returns a copy of fb in which each received packet's arrival time has
// the RAN-attributed delay subtracted. The sender's unmodified GCC then
// sees the path as if the RAN had been transparent. ranDelay reports the
// attribution for a sequence number (ok=false leaves the entry untouched).
func MaskFeedback(fb *rtp.Feedback, ranDelay func(seq uint16) (time.Duration, bool)) *rtp.Feedback {
	if fb == nil {
		return nil
	}
	out := &rtp.Feedback{SSRC: fb.SSRC, Reports: make([]rtp.ArrivalInfo, len(fb.Reports))}
	copy(out.Reports, fb.Reports)
	if ranDelay == nil {
		return out
	}
	for i := range out.Reports {
		r := &out.Reports[i]
		if !r.Received {
			continue
		}
		if d, ok := ranDelay(r.Seq); ok && d > 0 {
			r.Arrival -= d
		}
	}
	return out
}

// Package cc defines the sender-side congestion-control interface the
// simulated VCA drives, plus helpers shared by the concrete algorithms
// (GCC, NADA, SCReAM, loss-based, and the §5.3 PHY-informed and L4S
// variants in subpackages).
//
// All algorithms are fed the same inputs a real WebRTC sender has: its own
// send timestamps and the receiver's transport-wide feedback reports
// (sequence → arrival time, loss, ECN). Everything else — including any
// physical-layer hints — must come through an explicit side channel,
// mirroring the architectural point of the paper.
package cc

import (
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

// Controller is a sender-side congestion controller.
type Controller interface {
	// OnPacketSent informs the controller of a transmitted packet.
	OnPacketSent(twSeq uint16, size units.ByteCount, at time.Duration)
	// OnFeedback delivers a transport-wide feedback report at time now
	// (sender clock).
	OnFeedback(fb *rtp.Feedback, now time.Duration)
	// TargetRate reports the current media rate budget.
	TargetRate() units.BitRate
	// Name identifies the algorithm in bench output.
	Name() string
}

// SentPacket is the sender-side record of one transmitted packet.
type SentPacket struct {
	Seq    uint16
	Size   units.ByteCount
	SentAt time.Duration
}

// History ring-buffers sent-packet records keyed by transport-wide
// sequence number, for matching against feedback.
type History struct {
	slots [historySize]SentPacket
	valid [historySize]bool
}

const historySize = 1 << 12 // must exceed feedback round trips in packets

// Add records a sent packet.
func (h *History) Add(p SentPacket) {
	h.slots[p.Seq%historySize] = p
	h.valid[p.Seq%historySize] = true
}

// Get looks up the record for seq.
func (h *History) Get(seq uint16) (SentPacket, bool) {
	p := h.slots[seq%historySize]
	if !h.valid[seq%historySize] || p.Seq != seq {
		return SentPacket{}, false
	}
	return p, true
}

// RateWindow computes a running received-rate estimate from feedback
// arrivals over a sliding window, used by AIMD decreases ("0.85 × acked
// rate").
type RateWindow struct {
	Window time.Duration
	events []rateEvent
}

type rateEvent struct {
	at   time.Duration
	size units.ByteCount
}

// NewRateWindow creates a window of the given width (default 500 ms).
func NewRateWindow(w time.Duration) *RateWindow {
	if w <= 0 {
		w = 500 * time.Millisecond
	}
	return &RateWindow{Window: w}
}

// Add records size bytes acked/arrived at time at.
func (r *RateWindow) Add(at time.Duration, size units.ByteCount) {
	r.events = append(r.events, rateEvent{at, size})
	r.trim(at)
}

func (r *RateWindow) trim(now time.Duration) {
	cut := 0
	for cut < len(r.events) && r.events[cut].at < now-r.Window {
		cut++
	}
	r.events = r.events[cut:]
}

// Rate reports the average rate over the window ending at now.
func (r *RateWindow) Rate(now time.Duration) units.BitRate {
	r.trim(now)
	if len(r.events) == 0 {
		return 0
	}
	var total units.ByteCount
	for _, e := range r.events {
		total += e.size
	}
	span := r.Window
	return units.RateOf(total, span)
}

// LossEstimator tracks the loss fraction over recent feedback.
type LossEstimator struct {
	recv, lost int
	frac       float64
}

// Update folds one feedback report into the smoothed loss fraction.
func (l *LossEstimator) Update(fb *rtp.Feedback) {
	recv, lost := 0, 0
	for _, rep := range fb.Reports {
		if rep.Received {
			recv++
		} else {
			lost++
		}
	}
	l.recv += recv
	l.lost += lost
	if recv+lost == 0 {
		return
	}
	inst := float64(lost) / float64(recv+lost)
	l.frac = 0.7*l.frac + 0.3*inst
}

// Fraction reports the smoothed loss fraction in [0,1].
func (l *LossEstimator) Fraction() float64 { return l.frac }

package gcc

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func BenchmarkGCCFeedbackProcessing(b *testing.B) {
	g := New(units.Mbps, 100*units.Kbps, 5*units.Mbps)
	seq := uint16(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb := &rtp.Feedback{SSRC: 1}
		for j := 0; j < 5; j++ {
			send := time.Duration(i*5+j) * 10 * time.Millisecond
			g.OnPacketSent(seq, 1200, send)
			fb.Reports = append(fb.Reports, rtp.ArrivalInfo{
				Seq: seq, Received: true, Arrival: send + 15*time.Millisecond,
			})
			seq++
		}
		g.OnFeedback(fb, time.Duration(i)*50*time.Millisecond)
	}
}

package gcc

import "time"

// Trendline filter parameters, matching the WebRTC implementation.
const (
	trendWindow    = 20  // regression window (samples)
	trendSmoothing = 0.9 // exponential smoothing of accumulated delay
	thresholdGain  = 4.0 // gain applied before threshold comparison
	maxTrendDeltas = 60  // cap on the delta count multiplier
)

// trendline estimates the slope of the smoothed accumulated delay
// variation versus arrival time: the "filtered delay gradient" of Fig 10.
type trendline struct {
	numDeltas    int
	accumDelay   float64 // ms
	smoothedDlay float64 // ms
	firstArrival time.Duration
	haveFirst    bool

	// regression window of (arrival ms, smoothed accumulated delay ms)
	x, y []float64

	trend float64
}

// update folds one inter-group delay-variation sample in and recomputes
// the slope.
func (t *trendline) update(d time.Duration, arrival time.Duration) {
	if !t.haveFirst {
		t.firstArrival = arrival
		t.haveFirst = true
	}
	t.numDeltas++
	ms := float64(d) / float64(time.Millisecond)
	t.accumDelay += ms
	t.smoothedDlay = trendSmoothing*t.smoothedDlay + (1-trendSmoothing)*t.accumDelay

	xi := float64(arrival-t.firstArrival) / float64(time.Millisecond)
	t.x = append(t.x, xi)
	t.y = append(t.y, t.smoothedDlay)
	if len(t.x) > trendWindow {
		t.x = t.x[1:]
		t.y = t.y[1:]
	}
	if len(t.x) == trendWindow {
		t.trend = slope(t.x, t.y, t.trend)
	}
}

// slope computes the least-squares slope, keeping the previous value when
// the window is degenerate (zero x-variance).
func slope(x, y []float64, prev float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return prev
	}
	return num / den
}

// value reports the current slope estimate.
func (t *trendline) value() float64 { return t.trend }

// modified reports the threshold-comparable gradient:
// min(numDeltas, 60) × trend × gain.
func (t *trendline) modified() float64 {
	nd := t.numDeltas
	if nd > maxTrendDeltas {
		nd = maxTrendDeltas
	}
	return float64(nd) * t.trend * thresholdGain
}

package gcc

import (
	"time"

	"athena/internal/cc"
	"athena/internal/rtp"
	"athena/internal/units"
)

// TracePoint is one per-packet diagnostic sample: the data Fig 10 plots.
type TracePoint struct {
	PacketIndex int
	// Trend is the raw filtered delay gradient (slope), the figure's
	// y-axis.
	Trend float64
	// Threshold is the detector threshold scaled back to slope units so
	// it is comparable to Trend (the modified trend divides out
	// numDeltas × gain).
	Threshold float64
	// Overuse marks packets processed while the detector reported
	// overuse.
	Overuse bool
}

// GCC is the delay- plus loss-based Google Congestion Control sender.
type GCC struct {
	hist     cc.History
	ia       interArrival
	tl       trendline
	det      *detector
	rc       *aimd
	acked    *cc.RateWindow
	loss     cc.LossEstimator
	lossRate units.BitRate

	// DelayAdjust, when set, is subtracted from each packet's reported
	// arrival time before gradient estimation. The §5.3 PHY-informed
	// variant injects per-packet RAN-delay corrections here; plain GCC
	// leaves it nil.
	DelayAdjust func(seq uint16) (time.Duration, bool)

	// Trace accumulates per-packet diagnostics when CaptureTrace is true.
	CaptureTrace bool
	Trace        []TracePoint
	OveruseCount int

	pktIndex int
	lastTS   time.Duration
	haveTS   bool
}

var _ cc.Controller = (*GCC)(nil)

// New creates a GCC instance with the given initial and bounding rates.
func New(initial, min, max units.BitRate) *GCC {
	return &GCC{
		det:      newDetector(),
		rc:       newAIMD(initial, min, max),
		acked:    cc.NewRateWindow(0),
		lossRate: max,
	}
}

// Name implements cc.Controller.
func (g *GCC) Name() string { return "gcc" }

// OnPacketSent implements cc.Controller.
func (g *GCC) OnPacketSent(seq uint16, size units.ByteCount, at time.Duration) {
	g.hist.Add(cc.SentPacket{Seq: seq, Size: size, SentAt: at})
}

// OnFeedback implements cc.Controller: runs the delay-based estimator over
// the report's arrivals and updates the AIMD rate.
func (g *GCC) OnFeedback(fb *rtp.Feedback, now time.Duration) {
	g.loss.Update(fb)
	sig := UsageNormal
	for _, rep := range fb.Reports {
		if !rep.Received {
			g.pktIndex++
			continue
		}
		sent, ok := g.hist.Get(rep.Seq)
		if !ok {
			g.pktIndex++
			continue
		}
		arrival := rep.Arrival
		if g.DelayAdjust != nil {
			if adj, ok := g.DelayAdjust(rep.Seq); ok {
				arrival -= adj
			}
		}
		g.acked.Add(now, sent.Size)
		d, ok := g.ia.add(sent.SentAt, arrival)
		if ok {
			g.tl.update(d.d, arrival)
			dt := d.arrival
			if !g.haveTS {
				g.haveTS = true
			}
			g.lastTS = arrival
			sig = g.det.detect(g.tl.modified(), g.tl.value(), dt, now)
			if sig == UsageOveruse {
				g.OveruseCount++
			}
		}
		g.pktIndex++
		if g.CaptureTrace {
			nd := g.tl.numDeltas
			if nd > maxTrendDeltas {
				nd = maxTrendDeltas
			}
			scale := float64(nd) * thresholdGain
			thr := g.det.threshold
			if scale > 0 {
				thr /= scale
			}
			g.Trace = append(g.Trace, TracePoint{
				PacketIndex: g.pktIndex,
				Trend:       g.tl.value(),
				Threshold:   thr,
				Overuse:     g.det.hypothesis == UsageOveruse,
			})
		}
	}

	// Delay-based rate update with the final signal of this report.
	g.rc.update(sig, g.acked.Rate(now), now)

	// Sender-side loss controller (Carlucci et al. §4.1): >10% loss
	// multiplicatively decreases, <2% gently increases.
	lf := g.loss.Fraction()
	switch {
	case lf > 0.10:
		g.lossRate = units.BitRate(float64(g.lossRate) * (1 - 0.5*lf))
	case lf < 0.02:
		g.lossRate = units.BitRate(float64(g.lossRate) * 1.05)
	}
	g.lossRate = units.ClampRate(g.lossRate, g.rc.minRate, g.rc.maxRate)
}

// TargetRate implements cc.Controller: the min of the delay-based and
// loss-based rates.
func (g *GCC) TargetRate() units.BitRate {
	if g.lossRate < g.rc.rate {
		return g.lossRate
	}
	return g.rc.rate
}

// DetectorState reports the current hypothesis (diagnostics).
func (g *GCC) DetectorState() Usage { return g.det.hypothesis }

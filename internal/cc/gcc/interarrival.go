// Package gcc implements Google Congestion Control as described in
// Carlucci et al., "Analysis and Design of the Google Congestion Control
// for Web Real-Time Communication" (MMSys 2016) and as deployed in WebRTC:
// packet-group inter-arrival analysis, a trendline filter over the one-way
// delay gradient, an adaptive-threshold overuse detector, and AIMD rate
// control, plus a sender-side loss controller.
//
// GCC is the paper's §4 case study: on a 5G uplink its filtered delay
// gradient fluctuates enough to trip the overuse detector even on an idle
// cell (Fig 10). The estimator exposes a per-packet diagnostic trace so
// that figure can be regenerated exactly.
package gcc

import "time"

// burstDelta is the packet-grouping window: packets sent within 5 ms of a
// group's first packet belong to the same group.
const burstDelta = 5 * time.Millisecond

// group aggregates packets sent in one burst.
type group struct {
	firstSend    time.Duration
	lastSend     time.Duration
	lastArrival  time.Duration
	completeSize int
}

// interArrival turns per-packet (send, arrival) pairs into per-group
// deltas: sendDelta, arrivalDelta, and their difference (the delay
// variation sample d).
type interArrival struct {
	cur, prev group
	haveCur   bool
	havePrev  bool
}

// deltas is one inter-group measurement.
type deltas struct {
	send    time.Duration
	arrival time.Duration
	d       time.Duration // arrival - send: one-way delay variation
}

// add consumes one packet observation and reports group-complete deltas
// when the packet opens a new group. Packets must be fed in send order
// (transport-wide sequence order), as the WebRTC feedback adapter does.
func (ia *interArrival) add(send, arrival time.Duration) (deltas, bool) {
	if !ia.haveCur {
		ia.cur = group{firstSend: send, lastSend: send, lastArrival: arrival}
		ia.haveCur = true
		return deltas{}, false
	}
	if send-ia.cur.firstSend <= burstDelta {
		// Same burst: extend the current group.
		if send > ia.cur.lastSend {
			ia.cur.lastSend = send
		}
		if arrival > ia.cur.lastArrival {
			ia.cur.lastArrival = arrival
		}
		return deltas{}, false
	}
	// New group begins; if we have a previous complete group, emit deltas
	// between it and the (now complete) current group.
	var out deltas
	ok := false
	if ia.havePrev {
		out = deltas{
			send:    ia.cur.lastSend - ia.prev.lastSend,
			arrival: ia.cur.lastArrival - ia.prev.lastArrival,
		}
		out.d = out.arrival - out.send
		ok = true
	}
	ia.prev = ia.cur
	ia.havePrev = true
	ia.cur = group{firstSend: send, lastSend: send, lastArrival: arrival}
	return out, ok
}

package gcc

import (
	"math"
	"time"

	"athena/internal/units"
)

// rateState is the AIMD controller's state machine position.
type rateState uint8

const (
	rateHold rateState = iota
	rateIncrease
	rateDecrease
)

// AIMD parameters (WebRTC AimdRateControl).
const (
	beta               = 0.85 // multiplicative decrease to 85% of acked rate
	increaseFactorPerS = 1.08 // multiplicative increase per second
	additiveMinBps     = 4000 // additive increase floor per response time
)

// aimd is the delay-based rate controller.
type aimd struct {
	rate       units.BitRate
	minRate    units.BitRate
	maxRate    units.BitRate
	state      rateState
	lastChange time.Duration
	haveChange bool

	// linkCapacity is the decayed estimate of the rate at the last
	// overuse, switching increase mode from multiplicative to additive
	// when close.
	linkCapacity units.BitRate
	haveLinkCap  bool
}

func newAIMD(initial, min, max units.BitRate) *aimd {
	return &aimd{rate: initial, minRate: min, maxRate: max, state: rateHold}
}

// update applies the detector signal and the current acked rate.
func (a *aimd) update(sig Usage, acked units.BitRate, now time.Duration) {
	// State transitions (WebRTC ChangeState): overuse always decreases;
	// underuse holds (the queues are draining — don't push); normal
	// ratchets Hold→Increase.
	switch sig {
	case UsageOveruse:
		a.state = rateDecrease
	case UsageUnderuse:
		a.state = rateHold
	default:
		if a.state == rateDecrease {
			a.state = rateHold
		} else if a.state == rateHold {
			a.state = rateIncrease
		}
	}

	dt := time.Second
	if a.haveChange && now > a.lastChange {
		dt = now - a.lastChange
		if dt > time.Second {
			dt = time.Second
		}
	}

	switch a.state {
	case rateIncrease:
		if a.haveLinkCap && nearCapacity(a.rate, a.linkCapacity) {
			// Additive: about one packet per response time.
			add := units.BitRate(float64(additiveMinBps) * dt.Seconds() * 10)
			if add < 1000 {
				add = 1000
			}
			a.rate += add
		} else {
			factor := math.Pow(increaseFactorPerS, dt.Seconds())
			a.rate = units.BitRate(float64(a.rate) * factor)
		}
		a.lastChange = now
		a.haveChange = true
	case rateDecrease:
		target := units.BitRate(beta * float64(acked))
		if acked == 0 {
			target = units.BitRate(beta * float64(a.rate))
		}
		if target < a.rate {
			a.rate = target
		}
		a.linkCapacity = acked
		a.haveLinkCap = acked > 0
		a.lastChange = now
		a.haveChange = true
		// After decreasing, hold until the next normal signal.
		a.state = rateHold
	case rateHold:
		// no rate change
	}
	a.rate = units.ClampRate(a.rate, a.minRate, a.maxRate)
}

// nearCapacity reports whether rate is close enough to the last-known
// link capacity that further growth should be additive, not
// multiplicative.
func nearCapacity(rate, linkCap units.BitRate) bool {
	lo := float64(linkCap) * 0.9
	hi := float64(linkCap) * 1.5
	return float64(rate) > lo && float64(rate) < hi
}

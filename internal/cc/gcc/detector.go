package gcc

import "time"

// Usage is the detector's hypothesis about network utilization.
type Usage uint8

// Detector outputs.
const (
	UsageNormal Usage = iota
	UsageOveruse
	UsageUnderuse
)

// String names the hypothesis.
func (u Usage) String() string {
	switch u {
	case UsageOveruse:
		return "overuse"
	case UsageUnderuse:
		return "underuse"
	}
	return "normal"
}

// Overuse detector parameters (WebRTC values).
const (
	initialThreshold = 12.5 // ms, on the modified trend
	thresholdMin     = 6.0
	thresholdMax     = 600.0
	gainUp           = 0.0087 // threshold adaptation when |m| > threshold
	gainDown         = 0.039  // threshold adaptation when |m| < threshold
	maxAdaptOffset   = 15.0   // |m| beyond threshold+15 does not adapt it
	overuseTime      = 10 * time.Millisecond
)

// detector is the adaptive-threshold overuse detector.
type detector struct {
	threshold  float64
	overUsing  time.Duration
	overCount  int
	prevTrend  float64
	lastUpdate time.Duration
	haveUpdate bool
	hypothesis Usage
}

func newDetector() *detector {
	return &detector{threshold: initialThreshold}
}

// detect consumes the modified trend m and the raw trend (for the
// monotonicity check), with tsDelta the time since the previous group.
func (d *detector) detect(m, trend float64, tsDelta time.Duration, now time.Duration) Usage {
	switch {
	case m > d.threshold:
		d.overUsing += tsDelta
		d.overCount++
		if d.overUsing > overuseTime && d.overCount > 1 && trend >= d.prevTrend {
			d.hypothesis = UsageOveruse
		}
	case m < -d.threshold:
		d.overUsing = 0
		d.overCount = 0
		d.hypothesis = UsageUnderuse
	default:
		d.overUsing = 0
		d.overCount = 0
		d.hypothesis = UsageNormal
	}
	d.prevTrend = trend
	d.adapt(m, now)
	return d.hypothesis
}

// adapt moves the threshold toward |m|: slowly upward (so a few spikes do
// not desensitize the detector), faster downward.
func (d *detector) adapt(m float64, now time.Duration) {
	am := m
	if am < 0 {
		am = -am
	}
	if am > d.threshold+maxAdaptOffset {
		d.lastUpdate = now
		d.haveUpdate = true
		return
	}
	k := gainDown
	if am > d.threshold {
		k = gainUp
	}
	dt := 100.0 // ms cap
	if d.haveUpdate {
		if ms := float64(now-d.lastUpdate) / float64(time.Millisecond); ms < dt {
			dt = ms
		}
	}
	d.threshold += k * (am - d.threshold) * dt
	if d.threshold < thresholdMin {
		d.threshold = thresholdMin
	}
	if d.threshold > thresholdMax {
		d.threshold = thresholdMax
	}
	d.lastUpdate = now
	d.haveUpdate = true
}

package gcc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func ms(x float64) time.Duration { return time.Duration(x * float64(time.Millisecond)) }

func TestInterArrivalGrouping(t *testing.T) {
	var ia interArrival
	// Burst 1: two packets at 0 and 1ms. Burst 2 at 10,11ms. Burst 3 at 20.
	if _, ok := ia.add(0, ms(30)); ok {
		t.Fatal("first packet should not complete a group")
	}
	if _, ok := ia.add(ms(1), ms(31)); ok {
		t.Fatal("same burst should not complete a group")
	}
	if _, ok := ia.add(ms(10), ms(41)); ok {
		t.Fatal("second group start: no previous complete pair yet")
	}
	ia.add(ms(11), ms(42))
	d, ok := ia.add(ms(20), ms(52))
	if !ok {
		t.Fatal("third group start should emit deltas between groups 1 and 2")
	}
	if d.send != ms(10) { // 11ms - 1ms
		t.Errorf("send delta = %v", d.send)
	}
	if d.arrival != ms(11) { // 42 - 31
		t.Errorf("arrival delta = %v", d.arrival)
	}
	if d.d != ms(1) {
		t.Errorf("d = %v", d.d)
	}
}

func TestTrendlineConstantDelayZeroSlope(t *testing.T) {
	var tl trendline
	for i := 0; i < 50; i++ {
		tl.update(0, time.Duration(i)*10*time.Millisecond)
	}
	if tl.value() != 0 {
		t.Fatalf("slope = %v, want 0", tl.value())
	}
}

func TestTrendlineDetectsRamp(t *testing.T) {
	var tl trendline
	// Each group arrives 2ms later than sent relative to the previous:
	// accumulated delay ramps, slope should go positive.
	for i := 0; i < 50; i++ {
		tl.update(2*time.Millisecond, time.Duration(i)*10*time.Millisecond)
	}
	if tl.value() <= 0 {
		t.Fatalf("slope = %v, want > 0", tl.value())
	}
}

func TestTrendlineDetectsDrain(t *testing.T) {
	var tl trendline
	for i := 0; i < 50; i++ {
		tl.update(-time.Millisecond, time.Duration(i)*10*time.Millisecond)
	}
	if tl.value() >= 0 {
		t.Fatalf("slope = %v, want < 0", tl.value())
	}
}

// Property: feeding a perfect linear ramp recovers the slope of the
// smoothed accumulated delay, which converges near the per-group delta
// divided by the group spacing.
func TestTrendlineSlopeProperty(t *testing.T) {
	f := func(deltaMs8 int8) bool {
		delta := time.Duration(deltaMs8) * time.Millisecond / 4
		var tl trendline
		for i := 0; i < 200; i++ {
			tl.update(delta, time.Duration(i)*10*time.Millisecond)
		}
		want := float64(delta) / float64(10*time.Millisecond)
		got := tl.value()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.05 || (want != 0 && diff/absf(want) < 0.2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSlopeDegenerate(t *testing.T) {
	if got := slope([]float64{1, 1, 1}, []float64{1, 2, 3}, 42); got != 42 {
		t.Fatalf("degenerate slope = %v, want prev", got)
	}
}

func TestDetectorOveruseNeedsPersistence(t *testing.T) {
	d := newDetector()
	// A single spike above threshold must not trigger overuse.
	sig := d.detect(50, 1, ms(5), 0)
	if sig == UsageOveruse {
		t.Fatal("single spike should not be overuse")
	}
	// Sustained high modified trend does.
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		now += ms(5)
		sig = d.detect(50, 1, ms(5), now)
	}
	if sig != UsageOveruse {
		t.Fatalf("sustained spike should be overuse, got %v", sig)
	}
}

func TestDetectorUnderuse(t *testing.T) {
	d := newDetector()
	if sig := d.detect(-50, -1, ms(5), 0); sig != UsageUnderuse {
		t.Fatalf("got %v", sig)
	}
}

func TestDetectorThresholdAdapts(t *testing.T) {
	d := newDetector()
	t0 := d.threshold
	// Repeated moderate |m| just above threshold raises it slowly.
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		now += ms(5)
		d.detect(t0+5, 0.1, ms(5), now)
	}
	if d.threshold <= t0 {
		t.Fatalf("threshold did not rise: %v", d.threshold)
	}
	// Quiet period decays it back down.
	high := d.threshold
	for i := 0; i < 200; i++ {
		now += ms(5)
		d.detect(0, 0, ms(5), now)
	}
	if d.threshold >= high {
		t.Fatalf("threshold did not decay: %v", d.threshold)
	}
	if d.threshold < thresholdMin-1e-9 {
		t.Fatalf("threshold below min: %v", d.threshold)
	}
}

func TestDetectorBigSpikeDoesNotAdapt(t *testing.T) {
	d := newDetector()
	t0 := d.threshold
	d.detect(t0+maxAdaptOffset+100, 1, ms(5), ms(5))
	if d.threshold != t0 {
		t.Fatalf("huge outlier adapted threshold: %v", d.threshold)
	}
}

func TestUsageString(t *testing.T) {
	if UsageNormal.String() != "normal" || UsageOveruse.String() != "overuse" || UsageUnderuse.String() != "underuse" {
		t.Fatal("usage names")
	}
}

func TestAIMDIncreaseOnNormal(t *testing.T) {
	a := newAIMD(500*units.Kbps, 50*units.Kbps, 5*units.Mbps)
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		now += 100 * time.Millisecond
		a.update(UsageNormal, 500*units.Kbps, now)
	}
	if a.rate <= 500*units.Kbps {
		t.Fatalf("rate did not grow: %v", a.rate)
	}
}

func TestAIMDDecreaseOnOveruse(t *testing.T) {
	a := newAIMD(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	a.update(UsageOveruse, 800*units.Kbps, time.Second)
	want := units.BitRate(0.85 * 800000)
	if a.rate != want {
		t.Fatalf("rate = %v, want %v", a.rate, want)
	}
}

func TestAIMDDecreaseNeverIncreases(t *testing.T) {
	a := newAIMD(200*units.Kbps, 50*units.Kbps, 5*units.Mbps)
	a.update(UsageOveruse, 10*units.Mbps, time.Second) // acked way above current
	if a.rate > 200*units.Kbps {
		t.Fatalf("overuse raised the rate to %v", a.rate)
	}
}

func TestAIMDClamps(t *testing.T) {
	a := newAIMD(units.Mbps, 900*units.Kbps, 1100*units.Kbps)
	for i := 1; i < 50; i++ {
		a.update(UsageNormal, units.Mbps, time.Duration(i)*100*time.Millisecond)
	}
	if a.rate > 1100*units.Kbps {
		t.Fatalf("exceeded max: %v", a.rate)
	}
	a.update(UsageOveruse, 100*units.Kbps, 10*time.Second)
	if a.rate < 900*units.Kbps {
		t.Fatalf("fell below min: %v", a.rate)
	}
}

func TestAIMDHoldOnUnderuse(t *testing.T) {
	a := newAIMD(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	r0 := a.rate
	a.update(UsageUnderuse, units.Mbps, time.Second)
	if a.rate != r0 {
		t.Fatalf("underuse changed rate: %v", a.rate)
	}
}

// driveGCC runs a GCC sender against a synthetic path described by
// delayFn(sendTime) and returns the controller.
func driveGCC(g *GCC, seconds int, delayFn func(i int, send time.Duration) time.Duration) {
	seq := uint16(0)
	interval := 10 * time.Millisecond
	var fb *rtp.Feedback
	for i := 0; i < seconds*100; i++ {
		send := time.Duration(i) * interval
		g.OnPacketSent(seq, 1200, send)
		arrival := send + delayFn(i, send)
		if fb == nil {
			fb = &rtp.Feedback{SSRC: 1}
		}
		fb.Reports = append(fb.Reports, rtp.ArrivalInfo{Seq: seq, Received: true, Arrival: arrival})
		seq++
		if len(fb.Reports) == 5 { // feedback every 50ms
			g.OnFeedback(fb, send+50*time.Millisecond)
			fb = nil
		}
	}
}

func TestGCCStablePathNoOveruseAndGrowth(t *testing.T) {
	g := New(500*units.Kbps, 50*units.Kbps, 3*units.Mbps)
	driveGCC(g, 20, func(i int, _ time.Duration) time.Duration { return 15 * time.Millisecond })
	if g.OveruseCount != 0 {
		t.Fatalf("overuse on constant-delay path: %d", g.OveruseCount)
	}
	if g.TargetRate() <= 500*units.Kbps {
		t.Fatalf("rate did not grow on clean path: %v", g.TargetRate())
	}
}

func TestGCCRampTriggersOveruseAndDecrease(t *testing.T) {
	g := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	// Delay grows 1ms every packet: a filling queue.
	driveGCC(g, 5, func(i int, _ time.Duration) time.Duration {
		return 15*time.Millisecond + time.Duration(i)*time.Millisecond
	})
	if g.OveruseCount == 0 {
		t.Fatal("no overuse on a steadily filling queue")
	}
	if g.TargetRate() >= units.Mbps {
		t.Fatalf("rate did not decrease: %v", g.TargetRate())
	}
}

// The paper's Fig 10 mechanism: RAN-style sawtooth delays (slot alignment
// + BSR cycles) on an otherwise idle path make the filtered gradient
// fluctuate and trip the detector even though no queue is building.
func ranSawtooth(i int, _ time.Duration) time.Duration {
	// Idle-cell 5G uplink pattern (Fig 9a): within each burst episode the
	// per-packet delay ramps as later packets wait for successive 2.5 ms
	// proactive slots and finally the 10 ms BSR grant, then collapses at
	// the next episode. The ramp sustains a positive filtered gradient
	// long enough to trip the detector even though no queue is building.
	phase := i % 25
	d := 5*time.Millisecond + time.Duration(phase)*1200*time.Microsecond
	d += time.Duration(i%2) * 2500 * time.Microsecond // slot quantization
	return d
}

func TestGCCPhantomOveruseOn5GSawtooth(t *testing.T) {
	g := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	g.CaptureTrace = true
	driveGCC(g, 30, ranSawtooth)
	if g.OveruseCount == 0 {
		t.Fatal("expected phantom overuse on RAN sawtooth delays")
	}
	if len(g.Trace) == 0 {
		t.Fatal("trace not captured")
	}
	// The trace must show gradient fluctuation in both directions.
	var hasPos, hasNeg bool
	for _, tp := range g.Trace {
		if tp.Trend > 0.01 {
			hasPos = true
		}
		if tp.Trend < -0.01 {
			hasNeg = true
		}
	}
	if !hasPos || !hasNeg {
		t.Fatal("gradient did not fluctuate both ways")
	}
}

// §5.3: informing GCC of the RAN-induced delay component removes the
// phantom overuse entirely.
func TestGCCDelayAdjustRemovesPhantomOveruse(t *testing.T) {
	g := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	// The adjuster knows exactly the RAN-induced component.
	idx := map[uint16]int{}
	n := 0
	g.DelayAdjust = func(seq uint16) (time.Duration, bool) {
		return ranSawtooth(idx[seq], 0) - 5*time.Millisecond, true
	}
	seq := uint16(0)
	var fb *rtp.Feedback
	for i := 0; i < 3000; i++ {
		send := time.Duration(i) * 10 * time.Millisecond
		idx[seq] = i
		g.OnPacketSent(seq, 1200, send)
		if fb == nil {
			fb = &rtp.Feedback{SSRC: 1}
		}
		fb.Reports = append(fb.Reports, rtp.ArrivalInfo{Seq: seq, Received: true, Arrival: send + ranSawtooth(i, send)})
		seq++
		if len(fb.Reports) == 5 {
			g.OnFeedback(fb, send+50*time.Millisecond)
			fb = nil
		}
		n++
	}
	if g.OveruseCount != 0 {
		t.Fatalf("PHY-informed GCC still detected %d overuses", g.OveruseCount)
	}
}

func TestGCCLossController(t *testing.T) {
	g := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	// Feedback with 50% loss repeatedly.
	for i := 0; i < 50; i++ {
		fb := &rtp.Feedback{SSRC: 1}
		for j := 0; j < 10; j++ {
			seq := uint16(i*10 + j)
			g.OnPacketSent(seq, 1200, time.Duration(i*10+j)*10*time.Millisecond)
			fb.Reports = append(fb.Reports, rtp.ArrivalInfo{
				Seq: seq, Received: j%2 == 0,
				Arrival: time.Duration(i*10+j)*10*time.Millisecond + 15*time.Millisecond,
			})
		}
		g.OnFeedback(fb, time.Duration(i)*100*time.Millisecond)
	}
	if g.TargetRate() >= units.Mbps {
		t.Fatalf("50%% loss did not reduce rate: %v", g.TargetRate())
	}
}

func TestGCCIgnoresUnknownSeqs(t *testing.T) {
	g := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	fb := &rtp.Feedback{SSRC: 1, Reports: []rtp.ArrivalInfo{
		{Seq: 999, Received: true, Arrival: time.Millisecond},
	}}
	g.OnFeedback(fb, time.Second) // must not panic
	if g.Name() != "gcc" {
		t.Fatal("name")
	}
}

func TestGCCDeterministic(t *testing.T) {
	run := func() units.BitRate {
		g := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
		rng := rand.New(rand.NewSource(5))
		driveGCC(g, 10, func(i int, _ time.Duration) time.Duration {
			return time.Duration(10+rng.Intn(20)) * time.Millisecond
		})
		return g.TargetRate()
	}
	if run() != run() {
		t.Fatal("nondeterministic")
	}
}

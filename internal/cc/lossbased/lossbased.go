// Package lossbased implements the classic loss-driven AIMD baseline the
// paper argues is "poorly-suited for low-latency video conferencing": it
// only reacts once queues overflow, after delay has already ballooned.
// It serves as the comparison point for the delay-based algorithms.
package lossbased

import (
	"time"

	"athena/internal/cc"
	"athena/internal/rtp"
	"athena/internal/units"
)

// Controller is a TCP-Reno-flavored rate controller driven purely by loss.
type Controller struct {
	rate     units.BitRate
	min, max units.BitRate
	loss     cc.LossEstimator
	lastUp   time.Duration
}

var _ cc.Controller = (*Controller)(nil)

// New creates the controller.
func New(initial, min, max units.BitRate) *Controller {
	return &Controller{rate: initial, min: min, max: max}
}

// Name implements cc.Controller.
func (c *Controller) Name() string { return "loss-based" }

// OnPacketSent implements cc.Controller (loss-based needs no send state).
func (c *Controller) OnPacketSent(uint16, units.ByteCount, time.Duration) {}

// OnFeedback implements cc.Controller: halve on meaningful loss, probe
// upward otherwise.
func (c *Controller) OnFeedback(fb *rtp.Feedback, now time.Duration) {
	lost := false
	for _, r := range fb.Reports {
		if !r.Received {
			lost = true
			break
		}
	}
	c.loss.Update(fb)
	if lost && c.loss.Fraction() > 0.02 {
		c.rate = units.BitRate(float64(c.rate) * 0.5)
	} else if now-c.lastUp >= 100*time.Millisecond {
		// Additive increase ~50 kbps per second.
		c.rate += units.BitRate(5 * units.Kbps)
		c.lastUp = now
	}
	c.rate = units.ClampRate(c.rate, c.min, c.max)
}

// TargetRate implements cc.Controller.
func (c *Controller) TargetRate() units.BitRate { return c.rate }

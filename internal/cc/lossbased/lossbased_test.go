package lossbased

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func TestGrowsWithoutLoss(t *testing.T) {
	c := New(500*units.Kbps, 50*units.Kbps, 5*units.Mbps)
	for i := 0; i < 50; i++ {
		fb := &rtp.Feedback{Reports: []rtp.ArrivalInfo{{Seq: uint16(i), Received: true}}}
		c.OnFeedback(fb, time.Duration(i)*200*time.Millisecond)
	}
	if c.TargetRate() <= 500*units.Kbps {
		t.Fatalf("no growth: %v", c.TargetRate())
	}
}

func TestHalvesOnLoss(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	fb := &rtp.Feedback{Reports: []rtp.ArrivalInfo{
		{Seq: 1, Received: false}, {Seq: 2, Received: false}, {Seq: 3, Received: true},
	}}
	c.OnFeedback(fb, time.Second)
	if c.TargetRate() != 500*units.Kbps {
		t.Fatalf("rate = %v, want halved", c.TargetRate())
	}
}

func TestIgnoresDelay(t *testing.T) {
	// The whole point of the baseline: arbitrary delay, no reaction.
	c := New(units.Mbps, 50*units.Kbps, 5*units.Mbps)
	fb := &rtp.Feedback{Reports: []rtp.ArrivalInfo{
		{Seq: 1, Received: true, Arrival: 10 * time.Second},
	}}
	c.OnFeedback(fb, time.Second)
	if c.TargetRate() < units.Mbps {
		t.Fatalf("delay caused decrease: %v", c.TargetRate())
	}
}

func TestClampsToMax(t *testing.T) {
	c := New(990*units.Kbps, 50*units.Kbps, units.Mbps)
	for i := 0; i < 100; i++ {
		fb := &rtp.Feedback{Reports: []rtp.ArrivalInfo{{Seq: uint16(i), Received: true}}}
		c.OnFeedback(fb, time.Duration(i)*200*time.Millisecond)
	}
	if c.TargetRate() != units.Mbps {
		t.Fatalf("rate = %v, want clamped at max", c.TargetRate())
	}
	if c.Name() != "loss-based" {
		t.Fatal("name")
	}
	c.OnPacketSent(0, 0, 0) // no-op, must not panic
}

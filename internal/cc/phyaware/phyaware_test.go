package phyaware

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

func TestTableAdjuster(t *testing.T) {
	tab := NewTable()
	tab.Set(5, 10*time.Millisecond)
	if d, ok := tab.RANDelay(5); !ok || d != 10*time.Millisecond {
		t.Fatalf("RANDelay: %v %v", d, ok)
	}
	if _, ok := tab.RANDelay(6); ok {
		t.Fatal("missing seq found")
	}
}

func TestAdjusterFunc(t *testing.T) {
	f := AdjusterFunc(func(seq uint16) (time.Duration, bool) { return time.Millisecond, seq == 1 })
	if d, ok := f.RANDelay(1); !ok || d != time.Millisecond {
		t.Fatal("AdjusterFunc broken")
	}
}

// The PHY-informed GCC sees through RAN-induced sawtooth delay while a
// vanilla GCC trips on it — the §5.3 headline property, here at unit
// scale (the full-path version is integration-tested).
func TestPHYAwareSuppressesPhantomOveruse(t *testing.T) {
	ranDelay := func(i int) time.Duration {
		return time.Duration(i%25) * 1200 * time.Microsecond
	}
	tab := NewTable()
	plain := New(units.Mbps, 50*units.Kbps, 3*units.Mbps, nil)
	aware := New(units.Mbps, 50*units.Kbps, 3*units.Mbps, tab)
	drive := func(g interface {
		OnPacketSent(uint16, units.ByteCount, time.Duration)
		OnFeedback(*rtp.Feedback, time.Duration)
	}) {
		var fb *rtp.Feedback
		for i := 0; i < 2000; i++ {
			seq := uint16(i)
			send := time.Duration(i) * 10 * time.Millisecond
			rd := ranDelay(i)
			tab.Set(seq, rd)
			g.OnPacketSent(seq, 1200, send)
			if fb == nil {
				fb = &rtp.Feedback{SSRC: 1}
			}
			fb.Reports = append(fb.Reports, rtp.ArrivalInfo{
				Seq: seq, Received: true, Arrival: send + 5*time.Millisecond + rd,
			})
			if len(fb.Reports) == 5 {
				g.OnFeedback(fb, send+50*time.Millisecond)
				fb = nil
			}
		}
	}
	drive(plain)
	drive(aware)
	if plain.OveruseCount == 0 {
		t.Fatal("vanilla GCC should trip on RAN sawtooth")
	}
	if aware.OveruseCount != 0 {
		t.Fatalf("PHY-aware GCC tripped %d times", aware.OveruseCount)
	}
	if aware.TargetRate() <= plain.TargetRate() {
		t.Fatalf("PHY-aware should sustain a higher rate: %v vs %v",
			aware.TargetRate(), plain.TargetRate())
	}
}

// Genuine congestion must remain visible through the adjustment.
func TestPHYAwareStillSeesRealCongestion(t *testing.T) {
	tab := NewTable()
	aware := New(units.Mbps, 50*units.Kbps, 3*units.Mbps, tab)
	var fb *rtp.Feedback
	for i := 0; i < 600; i++ {
		seq := uint16(i)
		send := time.Duration(i) * 10 * time.Millisecond
		tab.Set(seq, 0) // RAN explains nothing
		aware.OnPacketSent(seq, 1200, send)
		if fb == nil {
			fb = &rtp.Feedback{SSRC: 1}
		}
		// Real queue: delay grows 1ms per packet.
		fb.Reports = append(fb.Reports, rtp.ArrivalInfo{
			Seq: seq, Received: true,
			Arrival: send + 15*time.Millisecond + time.Duration(i)*time.Millisecond,
		})
		if len(fb.Reports) == 5 {
			aware.OnFeedback(fb, send+50*time.Millisecond)
			fb = nil
		}
	}
	if aware.OveruseCount == 0 {
		t.Fatal("PHY-aware GCC blind to genuine congestion")
	}
	if aware.TargetRate() >= units.Mbps {
		t.Fatalf("rate did not decrease: %v", aware.TargetRate())
	}
}

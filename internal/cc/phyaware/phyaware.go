// Package phyaware implements the §5.3 mitigation in which "physical-layer
// information is fed to the application layer, enhancing delay-based
// congestion control": a GCC sender whose per-packet arrival times are
// corrected by the RAN-induced delay components (slot-alignment wait, BSR
// scheduling wait, HARQ retransmission) reported through a PHY telemetry
// side channel, before the delay-gradient estimator sees them.
//
// The correction only removes delay the RAN itself explains; genuine
// congestive queueing remains visible, so the controller still backs off
// when the cell is actually overloaded.
package phyaware

import (
	"time"

	"athena/internal/cc"
	"athena/internal/cc/gcc"
	"athena/internal/units"
)

// Adjuster reports the RAN-induced delay of a packet by transport-wide
// sequence number, and whether telemetry for it exists.
type Adjuster interface {
	RANDelay(seq uint16) (time.Duration, bool)
}

// AdjusterFunc adapts a function to Adjuster.
type AdjusterFunc func(seq uint16) (time.Duration, bool)

// RANDelay calls f.
func (f AdjusterFunc) RANDelay(seq uint16) (time.Duration, bool) { return f(seq) }

// New creates a PHY-informed GCC: identical to gcc.New but with the
// telemetry adjuster wired into the estimator.
func New(initial, min, max units.BitRate, adj Adjuster) *gcc.GCC {
	g := gcc.New(initial, min, max)
	if adj != nil {
		g.DelayAdjust = adj.RANDelay
	}
	return g
}

// Table is a simple Adjuster backed by a map the simulation (or the
// Athena correlator's live mode) fills in as packets traverse the RAN.
type Table struct {
	m map[uint16]time.Duration
}

// NewTable creates an empty adjustment table.
func NewTable() *Table { return &Table{m: make(map[uint16]time.Duration)} }

// Set records the RAN-induced delay for seq.
func (t *Table) Set(seq uint16, d time.Duration) { t.m[seq] = d }

// RANDelay implements Adjuster.
func (t *Table) RANDelay(seq uint16) (time.Duration, bool) {
	d, ok := t.m[seq]
	return d, ok
}

var _ cc.Controller = (*gcc.GCC)(nil)

// Package nada implements a simplified NADA congestion controller
// (Zhu & Pan, Packet Video 2013; RFC 8698): a unified delay-plus-loss
// congestion signal driving accelerated ramp-up when the path is clean
// and gradual rate adjustment otherwise.
//
// Simplifications relative to RFC 8698 (documented per DESIGN.md): no
// ECN-based warping, no sender-side shared-bottleneck priority weighting,
// and the non-linear warping of large delays is a single clamp. The
// control-law structure (x_curr signal, x_ref set point, gradual update
// proportional to the offset) follows the RFC.
package nada

import (
	"time"

	"athena/internal/cc"
	"athena/internal/rtp"
	"athena/internal/units"
)

// Control-law constants (RFC 8698 defaults, times in ms).
const (
	xRefMS        = 10.0   // reference congestion signal
	tauMS         = 500.0  // target feedback interval
	kappa         = 0.5    // gradual-mode scaling
	etaMax        = 2.0    // accelerated ramp-up cap per interval
	lossPenaltyMS = 1000.0 // delay-equivalent of 100% loss
)

// Controller is the NADA sender.
type Controller struct {
	hist     cc.History
	rate     units.BitRate
	min, max units.BitRate
	loss     cc.LossEstimator

	baseOWD  time.Duration
	haveBase bool
	lastFB   time.Duration
	haveFB   bool

	// xCurr is the most recent aggregate congestion signal (ms).
	xCurr float64
}

var _ cc.Controller = (*Controller)(nil)

// New creates a NADA controller.
func New(initial, min, max units.BitRate) *Controller {
	return &Controller{rate: initial, min: min, max: max}
}

// Name implements cc.Controller.
func (c *Controller) Name() string { return "nada" }

// OnPacketSent implements cc.Controller.
func (c *Controller) OnPacketSent(seq uint16, size units.ByteCount, at time.Duration) {
	c.hist.Add(cc.SentPacket{Seq: seq, Size: size, SentAt: at})
}

// OnFeedback implements cc.Controller.
func (c *Controller) OnFeedback(fb *rtp.Feedback, now time.Duration) {
	c.loss.Update(fb)
	// Median queuing delay over the report (one-way delay minus the
	// baseline minimum).
	var qd []float64
	for _, rep := range fb.Reports {
		if !rep.Received {
			continue
		}
		sent, ok := c.hist.Get(rep.Seq)
		if !ok {
			continue
		}
		owd := rep.Arrival - sent.SentAt
		if !c.haveBase || owd < c.baseOWD {
			c.baseOWD = owd
			c.haveBase = true
		}
		qd = append(qd, float64(owd-c.baseOWD)/float64(time.Millisecond))
	}
	if len(qd) == 0 {
		return
	}
	dq := median(qd)
	// Non-linear warping: very large queueing delays saturate so a single
	// spike cannot crater the rate.
	if dq > 400 {
		dq = 400
	}
	c.xCurr = dq + lossPenaltyMS*c.loss.Fraction()

	delta := tauMS
	if c.haveFB {
		delta = float64(now-c.lastFB) / float64(time.Millisecond)
		if delta <= 0 || delta > tauMS {
			delta = tauMS
		}
	}
	c.lastFB = now
	c.haveFB = true

	if c.xCurr < xRefMS/2 && c.loss.Fraction() == 0 {
		// Accelerated ramp-up: clean path.
		gamma := 0.05 * delta / tauMS * etaMax
		c.rate = units.BitRate(float64(c.rate) * (1 + gamma))
	} else {
		// Gradual update: move the rate proportionally to the signal
		// offset from the reference.
		offset := xRefMS - c.xCurr // positive = below reference, grow
		adj := kappa * (delta / tauMS) * (offset / tauMS) * float64(c.rate)
		c.rate += units.BitRate(adj)
	}
	c.rate = units.ClampRate(c.rate, c.min, c.max)
}

// TargetRate implements cc.Controller.
func (c *Controller) TargetRate() units.BitRate { return c.rate }

// Signal reports the current aggregate congestion signal in ms
// (diagnostics).
func (c *Controller) Signal() float64 { return c.xCurr }

func median(xs []float64) float64 {
	// insertion sort; reports are small
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

package nada

import (
	"testing"
	"time"

	"athena/internal/rtp"
	"athena/internal/units"
)

// drive feeds n packets with the given one-way-delay function, feedback
// every 5 packets.
func drive(c *Controller, n int, owd func(i int) time.Duration) {
	var fb *rtp.Feedback
	for i := 0; i < n; i++ {
		seq := uint16(i)
		send := time.Duration(i) * 20 * time.Millisecond
		c.OnPacketSent(seq, 1200, send)
		if fb == nil {
			fb = &rtp.Feedback{SSRC: 1}
		}
		fb.Reports = append(fb.Reports, rtp.ArrivalInfo{Seq: seq, Received: true, Arrival: send + owd(i)})
		if len(fb.Reports) == 5 {
			c.OnFeedback(fb, send+100*time.Millisecond)
			fb = nil
		}
	}
}

func TestNADARampUpOnCleanPath(t *testing.T) {
	c := New(300*units.Kbps, 50*units.Kbps, 3*units.Mbps)
	drive(c, 500, func(int) time.Duration { return 15 * time.Millisecond })
	if c.TargetRate() <= 300*units.Kbps {
		t.Fatalf("rate did not grow: %v", c.TargetRate())
	}
	if c.Signal() > 5 {
		t.Fatalf("clean-path signal = %v ms", c.Signal())
	}
}

func TestNADABacksOffOnQueueing(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	// Sustained 150ms queueing delay above baseline.
	drive(c, 100, func(i int) time.Duration {
		if i < 10 {
			return 15 * time.Millisecond
		}
		return 165 * time.Millisecond
	})
	if c.TargetRate() >= units.Mbps {
		t.Fatalf("rate did not decrease: %v", c.TargetRate())
	}
}

func TestNADALossPenalty(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	var fb *rtp.Feedback
	for i := 0; i < 200; i++ {
		seq := uint16(i)
		send := time.Duration(i) * 20 * time.Millisecond
		c.OnPacketSent(seq, 1200, send)
		if fb == nil {
			fb = &rtp.Feedback{SSRC: 1}
		}
		fb.Reports = append(fb.Reports, rtp.ArrivalInfo{
			Seq: seq, Received: i%3 != 0, // 33% loss
			Arrival: send + 15*time.Millisecond,
		})
		if len(fb.Reports) == 5 {
			c.OnFeedback(fb, send+100*time.Millisecond)
			fb = nil
		}
	}
	if c.TargetRate() >= units.Mbps {
		t.Fatalf("loss did not reduce rate: %v", c.TargetRate())
	}
}

func TestNADASpikeClamped(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	drive(c, 20, func(i int) time.Duration {
		if i == 12 {
			return 5 * time.Second // absurd spike
		}
		return 15 * time.Millisecond
	})
	// The warp clamp keeps one spike from flooring the rate.
	if c.TargetRate() < 200*units.Kbps {
		t.Fatalf("single spike floored rate: %v", c.TargetRate())
	}
}

func TestNADAEmptyFeedback(t *testing.T) {
	c := New(units.Mbps, 50*units.Kbps, 3*units.Mbps)
	c.OnFeedback(&rtp.Feedback{}, time.Second) // must not panic
	if c.Name() != "nada" {
		t.Fatal("name")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

package athena

// Registry completeness and compatibility: the registry is the single
// source of truth for the 23 evaluation artifacts, every legacy
// exported driver resolves to its registry entry, and the registry-
// driven sweep path renders byte-identical output to calling the legacy
// entry points directly — so future perf PRs can diff run manifests
// instead of eyeballing figures.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"athena/internal/experiment"
)

// allIDs is the canonical registry contents, in canonical order.
var allIDs = []string{
	"F3", "F4", "F5", "F6", "F7", "F8", "F9a", "F9b", "F10",
	"M1", "M2", "M3", "M4",
	"A1", "A2", "A3", "A4",
	"S1", "S2", "S3", "S4", "S8", "S9",
}

// legacyDrivers maps every exported compatibility wrapper to its ID.
var legacyDrivers = map[string]func(Options) *FigureData{
	"F3": Fig3, "F4": Fig4, "F5": Fig5, "F6": Fig6, "F7": Fig7, "F8": Fig8,
	"F9a": Fig9a, "F9b": Fig9b, "F10": Fig10,
	"M1": M1, "M2": M2, "M3": M3, "M4": M4,
	"A1": A1, "A2": A2, "A3": A3, "A4": A4,
	"S1": S1PHYContexts, "S2": S2AccessNetworks, "S3": S3LearningCC, "S4": S4AppDiversity,
	"S8": S8MixedWorkloads, "S9": S9QoEScheduler,
}

func TestRegistryCompleteAndStable(t *testing.T) {
	// The driver registrations plus anything a test registered; the 23
	// built-ins must be present exactly once, in canonical order.
	var builtin []Experiment
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[strings.ToLower(e.ID)] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[strings.ToLower(e.ID)] = true
		if _, ok := legacyDrivers[e.ID]; ok {
			builtin = append(builtin, e)
		}
	}
	if len(builtin) != len(allIDs) {
		t.Fatalf("registered built-ins = %d, want %d", len(builtin), len(allIDs))
	}
	for i, e := range builtin {
		if e.ID != allIDs[i] {
			t.Fatalf("canonical order broken at %d: got %s want %s", i, e.ID, allIDs[i])
		}
		if e.Title == "" || e.Family == "" || e.Description == "" || e.Gen == nil {
			t.Fatalf("%s metadata incomplete: %+v", e.ID, e)
		}
		if !e.HasTag(e.Family) {
			t.Fatalf("%s does not carry its family %q as a tag", e.ID, e.Family)
		}
	}
	// Select with empty filters returns the same complete stable set.
	sel, err := SelectExperiments(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) < len(allIDs) {
		t.Fatalf("empty Select returned %d experiments", len(sel))
	}
	// One smoke experiment per built-in family, so the CI sweep covers
	// every family.
	smoke, err := SelectExperiments(Selection{Tags: []string{"smoke"}})
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]int{}
	for _, e := range smoke {
		families[e.Family]++
	}
	for _, fam := range []string{"figure", "mitigation", "ablation", "study"} {
		if families[fam] != 1 {
			t.Fatalf("smoke tag covers family %q %d times, want exactly 1 (%v)", fam, families[fam], smoke)
		}
	}
}

func TestEveryLegacyDriverResolvesToRegistryEntry(t *testing.T) {
	for id, fn := range legacyDrivers {
		e, ok := LookupExperiment(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		if reflect.ValueOf(e.Gen).Pointer() != reflect.ValueOf(fn).Pointer() {
			t.Fatalf("%s registry generator is not the exported driver", id)
		}
		// Case-insensitive resolution (the -only f3 satellite).
		if low, ok := LookupExperiment(strings.ToLower(id)); !ok || low.ID != id {
			t.Fatalf("case-insensitive lookup of %s failed", id)
		}
	}
}

func TestSelectUnknownIDListsValidIDs(t *testing.T) {
	_, err := SelectExperiments(Selection{IDs: []string{"F99"}})
	if err == nil {
		t.Fatal("unknown ID must be an error, not an empty (exit-0) run")
	}
	for _, want := range append([]string{"F99"}, allIDs...) {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %q", err, want)
		}
	}
}

// TestRegistrySweepMatchesLegacyEntryPoints is the acceptance-criteria
// digest test: the registry-driven sweep path (selection, pooled
// execution, rendering, digesting) produces byte-identical output to
// the legacy exported entry points, at both -parallel settings.
func TestRegistrySweepMatchesLegacyEntryPoints(t *testing.T) {
	ids := []string{"F6", "A1", "F4"} // cheap representatives: schematic, sweep, single run
	opts := Options{Seed: 3, Scale: 0.05}
	sel, err := SelectExperiments(Selection{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	serial := SweepExperiments(context.Background(), sel, SweepConfig{Options: opts, Parallel: 1})
	par := SweepExperiments(context.Background(), sel, SweepConfig{Options: opts, Parallel: 4})

	for i, r := range serial {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		legacy := legacyDrivers[r.Experiment.ID](opts)
		if legacy.ID != r.Experiment.ID {
			t.Fatalf("figure ID %q != registry ID %q", legacy.ID, r.Experiment.ID)
		}
		if legacy.Title != r.Experiment.Title {
			t.Fatalf("%s figure title %q != registry title %q", r.Experiment.ID, legacy.Title, r.Experiment.Title)
		}
		if want := legacy.String(); r.Rendered != want {
			t.Fatalf("%s sweep output differs from legacy entry point:\n%s\nvs\n%s",
				r.Experiment.ID, r.Rendered, want)
		}
		if r.Digest != experiment.Digest(r.Rendered) || r.Digest != legacy.Digest() {
			t.Fatalf("%s digest mismatch", r.Experiment.ID)
		}
		if par[i].Digest != r.Digest {
			t.Fatalf("%s digest unstable across -parallel: %s vs %s",
				r.Experiment.ID, r.Digest, par[i].Digest)
		}
	}

	// Manifests from the two sweeps must agree digest-for-digest.
	if diffs := DiffManifests(NewManifest(opts, serial), NewManifest(opts, par)); len(diffs) != 0 {
		t.Fatalf("parallel manifests diverge: %v", diffs)
	}
}

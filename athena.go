// Package athena is the public API of the Athena cross-layer measurement
// framework, a full reimplementation-as-simulation of "Athena: Seeing and
// Mitigating Wireless Impact on Video Conferencing and Beyond"
// (HotNets 2024).
//
// The package exposes three levels of use:
//
//   - Run / Config: execute a complete Fig 2 testbed scenario — a VCA
//     call over a slot-accurate 5G RAN model (or the paper's emulated
//     wired baseline), with captures at all four measurement points, PHY
//     telemetry, ICMP probing, and the Athena correlator's cross-layer
//     report.
//   - Figure, mitigation, ablation and study drivers (Fig3 … Fig10,
//     M1 … M4, A1 … A4, S1 … S4, S8 … S9): regenerate every evaluation
//     artifact in the paper — plus the §5 agenda — returning plot-ready
//     series.
//   - The building blocks themselves live under internal/ and are
//     exercised through this facade.
package athena

import (
	"context"

	"athena/internal/core"
	"athena/internal/runner"
	"athena/internal/scenario"
)

// Config describes one testbed run; see scenario.Config for all knobs.
type Config = scenario.Config

// Result is a completed run: endpoints, captures, telemetry, and the
// correlated cross-layer report.
type Result = scenario.Result

// Report is the Athena correlator's output.
type Report = core.Report

// Controller kinds selectable in Config.Controller.
const (
	GCC       = scenario.CtlGCC
	NADA      = scenario.CtlNADA
	SCReAM    = scenario.CtlSCReAM
	LossBased = scenario.CtlLossBased
	L4S       = scenario.CtlL4S
	PHYAware  = scenario.CtlPHYAware
	MaskedGCC = scenario.CtlMaskedGCC
)

// AccessKind selects the access technology in Config.Access (§5.1).
type AccessKind = scenario.AccessKind

// Access technologies.
const (
	Access5G    = scenario.Access5G
	AccessWiFi  = scenario.AccessWiFi
	AccessLEO   = scenario.AccessLEO
	AccessWired = scenario.AccessWired
)

// DefaultConfig returns the paper-testbed defaults (private 5G SA cell,
// GCC, light channel fading).
func DefaultConfig() Config { return scenario.Defaults() }

// Run executes a scenario and correlates its traces. Runs go through the
// shared process-wide runner: a config already executed this process
// (same seed, same knobs) is recalled from the memoization cache and the
// callers share one Result. Results are safe to share because their
// accessors are pure readers; call RunFresh for a private, uncached
// Result.
func Run(cfg Config) *Result { return runner.Default.Run(cfg) }

// RunAll executes a batch of independent scenarios, fanning them across
// GOMAXPROCS workers while preserving input order and per-seed
// determinism: the returned results are byte-identical to running each
// config serially. Duplicate configs — within the batch or against the
// process-wide cache — simulate once. Every figure, mitigation, ablation
// and study driver submits its config sweep through this path.
func RunAll(cfgs []Config) []*Result {
	return runner.Default.RunAll(context.Background(), cfgs)
}

// RunFresh executes a scenario directly, bypassing the runner's cache —
// for callers that need exclusive ownership of the Result.
func RunFresh(cfg Config) *Result { return scenario.Run(cfg) }

// Topology describes a multi-UE cell: N VCA participants, each with its
// own endpoint pipeline, clocks, captures and flow IDs, sharing one RAN
// whose schedulers arbitrate their real competing uplink buffers.
type Topology = scenario.Topology

// UESpec configures one participant of a Topology.
type UESpec = scenario.UESpec

// TopologyResult bundles a topology run's shared infrastructure and the
// per-UE results.
type TopologyResult = scenario.TopologyResult

// UEResult is one UE's slice of a topology run, including its
// flow-filtered correlation Report.
type UEResult = scenario.UEResult

// FlowIDs names one UE's uplink/downlink media and NTP flows.
type FlowIDs = scenario.FlowIDs

// NewTopology returns a topology of n default VCA UEs sharing one
// DefaultConfig cell, each with a distinct media seed.
func NewTopology(n int) Topology { return scenario.NewTopology(n) }

// DefaultUE returns the default participant spec.
func DefaultUE() UESpec { return scenario.DefaultUE() }

// RunTopology executes a multi-UE topology and correlates each UE's
// traces. Topology runs are not memoized; every call simulates.
func RunTopology(top Topology) *TopologyResult { return scenario.RunTopology(top) }

// WorkloadKind names the application family a UE runs (UESpec.Workload).
// The zero value keeps the historical VCA endpoint.
type WorkloadKind = scenario.WorkloadKind

// Application families a UE can run in a Topology.
const (
	WorkloadVCA          = scenario.WorkloadVCA
	WorkloadCloudGaming  = scenario.WorkloadCloudGaming
	WorkloadBulkTransfer = scenario.WorkloadBulkTransfer
	WorkloadAudioOnly    = scenario.WorkloadAudioOnly
)

// WorkloadScore is a UE's app-level QoE summary (UEResult.Score): a
// family tag plus named scalars.
type WorkloadScore = scenario.WorkloadScore

// WorkloadKinds lists every application family in canonical order.
func WorkloadKinds() []WorkloadKind { return scenario.WorkloadKinds() }

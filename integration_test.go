package athena

// Integration tests: every figure driver at reduced scale, asserting the
// paper's headline *shape* claims hold end-to-end through the public API.

import (
	"math"
	"strings"
	"testing"
)

var itOpts = Options{Seed: 1, Scale: 0.5}

func TestIntegrationFig3UplinkDominatesJitter(t *testing.T) {
	fig := Fig3(itOpts)
	up := fig.Scalars["uplink_p95_ms"]
	down := fig.Scalars["downstream_p95_ms"]
	icmp := fig.Scalars["icmp_p95_ms"]
	if !(up > down && down > icmp) {
		t.Fatalf("expected uplink > downstream > icmp p95: %.1f %.1f %.1f", up, down, icmp)
	}
	// Takeaway (a): the 5G uplink is the primary jitter source — by a
	// wide margin, not a hair.
	if up < 2*icmp {
		t.Fatalf("uplink p95 %.1f should dwarf probe p95 %.1f", up, icmp)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("Fig3 series = %d", len(fig.Series))
	}
}

func TestIntegrationFig4AudioBelowVideo(t *testing.T) {
	fig := Fig4(itOpts)
	if fig.Scalars["audio_p50_ms"] >= fig.Scalars["video_p50_ms"] {
		t.Fatalf("audio median %.2f should be below video %.2f",
			fig.Scalars["audio_p50_ms"], fig.Scalars["video_p50_ms"])
	}
	// The long audio tail: p99 well above the median.
	if fig.Scalars["audio_p99_ms"] < 3*fig.Scalars["audio_p50_ms"] {
		t.Fatalf("audio should have a long tail: p50=%.2f p99=%.2f",
			fig.Scalars["audio_p50_ms"], fig.Scalars["audio_p99_ms"])
	}
}

func TestIntegrationFig5SpreadOnSlotGrid(t *testing.T) {
	fig := Fig5(itOpts)
	if got := fig.Scalars["fraction_on_2.5ms_grid"]; got < 0.99 {
		t.Fatalf("only %.2f of spreads on the 2.5 ms grid", got)
	}
	if fig.Scalars["core_spread_p90_ms"] <= 0 {
		t.Fatal("no core-side spread")
	}
}

func TestIntegrationFig6Schematic(t *testing.T) {
	fig := Fig6(itOpts)
	if fig.Scalars["ul_period_ms"] != 2.5 || fig.Scalars["sched_delay_ms"] != 10 {
		t.Fatalf("frame structure constants wrong: %v", fig.Scalars)
	}
	if len(fig.Notes) == 0 || !strings.Contains(fig.Notes[0], "[D][D][D][D][U]") {
		t.Fatalf("slot map missing: %v", fig.Notes)
	}
}

func TestIntegrationFig7FiveGLosesEverywhere(t *testing.T) {
	fig := Fig7(itOpts)
	checks := []struct {
		name     string
		fiveG    float64
		emulated float64
		lower    bool // true: 5G should be lower
	}{
		{"bitrate", fig.Scalars["5g_bitrate_p50_kbps"], fig.Scalars["em_bitrate_p50_kbps"], true},
		{"frame jitter", fig.Scalars["5g_jitter_p50_ms"], fig.Scalars["em_jitter_p50_ms"], false},
		{"frame rate", fig.Scalars["5g_fps_p50"], fig.Scalars["em_fps_p50"], true},
		{"ssim", fig.Scalars["5g_ssim_p50"], fig.Scalars["em_ssim_p50"], true},
	}
	for _, c := range checks {
		if math.IsNaN(c.fiveG) || math.IsNaN(c.emulated) {
			t.Fatalf("%s: NaN metric", c.name)
		}
		if c.lower && c.fiveG >= c.emulated {
			t.Errorf("%s: 5G %.3f should be below emulated %.3f", c.name, c.fiveG, c.emulated)
		}
		if !c.lower && c.fiveG <= c.emulated {
			t.Errorf("%s: 5G %.3f should be above emulated %.3f", c.name, c.fiveG, c.emulated)
		}
	}
}

func TestIntegrationFig8Adaptation(t *testing.T) {
	fig := Fig8(itOpts)
	if fig.Scalars["mode_changes"] < 1 {
		t.Fatal("delay spike did not change SVC mode")
	}
	if fig.Scalars["skip_events"] == 0 {
		t.Fatal("jitter episode did not cause frame skipping")
	}
	// Per-layer bitrate series exist for base + at least one enhancement.
	layers := 0
	for _, s := range fig.Series {
		if strings.HasPrefix(s.Name, "bitrate kbps:") {
			layers++
		}
	}
	if layers < 3 {
		t.Fatalf("only %d layer series", layers)
	}
}

func TestIntegrationFig9aOverGranting(t *testing.T) {
	fig := Fig9a(itOpts)
	if eff := fig.Scalars["requested_tb_efficiency"]; eff >= 0.95 {
		t.Fatalf("requested TBs fully used (%.2f); over-granting missing", eff)
	}
	if fig.Scalars["unused_requested_tbs"] == 0 {
		t.Fatal("no unused requested TBs")
	}
	// Drill-down rows include both packets and TBs.
	var pkts, tbs int
	for _, n := range fig.Notes {
		if strings.HasPrefix(n, "pkt") {
			pkts++
		}
		if strings.HasPrefix(n, "tb") {
			tbs++
		}
	}
	if pkts == 0 || tbs == 0 {
		t.Fatalf("drill-down incomplete: %d pkts %d tbs", pkts, tbs)
	}
}

func TestIntegrationFig9bHARQInflation(t *testing.T) {
	fig := Fig9b(itOpts)
	if fig.Scalars["packets_with_harq_inflation"] == 0 {
		t.Fatal("no HARQ-inflated packets at 25% BLER")
	}
	// Inflation quantum is 10 ms.
	if got := fig.Scalars["harq_inflation_p50_ms"]; math.Mod(got, 10) != 0 {
		t.Fatalf("median HARQ inflation %.1f not a 10 ms multiple", got)
	}
	if fig.Scalars["empty_tb_retransmissions"] == 0 {
		t.Fatal("empty-TB retransmissions not observed")
	}
}

func TestIntegrationFig10PhantomOveruse(t *testing.T) {
	fig := Fig10(itOpts)
	if fig.Scalars["overuse_detections"] == 0 {
		t.Fatal("idle 5G cell produced no phantom overuse")
	}
	if fig.Scalars["packets_traced"] < 1000 {
		t.Fatalf("trace too small: %v", fig.Scalars["packets_traced"])
	}
}

func TestIntegrationM1HalvesFrameDelay(t *testing.T) {
	fig := M1(itOpts)
	ratio := fig.Scalars["appaware_over_default"]
	if ratio == 0 || ratio > 0.5 {
		t.Fatalf("app-aware/default frame delay ratio %.2f, want <= 0.5 (the §5.2 claim)", ratio)
	}
	// Oracle lower-bounds everything.
	if fig.Scalars["mean_ms:oracle"] > fig.Scalars["mean_ms:app-aware"]+0.01 {
		t.Fatal("oracle should lower-bound app-aware")
	}
	// BSR-only is the worst of the realistic strategies.
	if fig.Scalars["mean_ms:bsr-only"] <= fig.Scalars["mean_ms:proactive+bsr (default)"] {
		t.Fatal("bsr-only should be slower than the combined default")
	}
}

func TestIntegrationM2PHYInformed(t *testing.T) {
	fig := M2(itOpts)
	if fig.Scalars["overuse:gcc"] <= fig.Scalars["overuse:gcc-phy"] {
		t.Fatalf("phy-informed GCC should cut idle overuse: %v vs %v",
			fig.Scalars["overuse:gcc"], fig.Scalars["overuse:gcc-phy"])
	}
	if fig.Scalars["rate_kbps:gcc-phy"] < fig.Scalars["rate_kbps:gcc"] {
		t.Fatal("phy-informed GCC should sustain at least the plain rate")
	}
	// Under genuine load it must still back off (not run at the max).
	if fig.Scalars["overuse:gcc-phy+load"] == 0 {
		t.Fatal("phy-informed GCC blind to genuine congestion")
	}
}

func TestIntegrationM3Masking(t *testing.T) {
	fig := M3(itOpts)
	if fig.Scalars["overuse:gcc-masked"] >= fig.Scalars["overuse:gcc"] {
		t.Fatalf("masking should cut overuse: %v vs %v",
			fig.Scalars["overuse:gcc"], fig.Scalars["overuse:gcc-masked"])
	}
}

func TestIntegrationM4L4S(t *testing.T) {
	fig := M4(itOpts)
	// Under heavy fades, GCC sheds more of its clean-channel rate than
	// L4S does.
	gccDrop := fig.Scalars["rate_kbps:gcc@fade=clean"] - fig.Scalars["rate_kbps:gcc@fade=heavy"]
	l4sDrop := fig.Scalars["rate_kbps:l4s@fade=clean"] - fig.Scalars["rate_kbps:l4s@fade=heavy"]
	if gccDrop <= l4sDrop {
		t.Fatalf("GCC should shed more rate under fades: gcc=-%.0f l4s=-%.0f", gccDrop, l4sDrop)
	}
}

func TestIntegrationA1Monotone(t *testing.T) {
	fig := A1(itOpts)
	if fig.Scalars["spread_p90_ms@sched=5ms"] >= fig.Scalars["spread_p90_ms@sched=20ms"] {
		t.Fatalf("spread should grow with sched delay: %v", fig.Scalars)
	}
}

func TestIntegrationA2Tradeoff(t *testing.T) {
	fig := A2(itOpts)
	if fig.Scalars["spread_p90_ms@tbs=800"] <= fig.Scalars["spread_p90_ms@tbs=6000"] {
		t.Fatal("bigger proactive grants should shrink the spread")
	}
	if fig.Scalars["proactive_eff@tbs=800"] <= fig.Scalars["proactive_eff@tbs=6000"] {
		t.Fatal("bigger proactive grants should waste more")
	}
}

func TestIntegrationA3TailGrows(t *testing.T) {
	fig := A3(itOpts)
	if fig.Scalars["ul_p99_ms@bler=0.00"] >= fig.Scalars["ul_p99_ms@bler=0.30"] {
		t.Fatal("delay tail should grow with BLER")
	}
}

func TestIntegrationA4SyncBudget(t *testing.T) {
	fig := A4(itOpts)
	if fig.Scalars["match_acc@err=0ms"] < 0.99 {
		t.Fatalf("perfect sync should match exactly: %v", fig.Scalars["match_acc@err=0ms"])
	}
	if fig.Scalars["match_acc@err=5ms"] < 0.95 {
		t.Fatalf("NTP-grade sync should survive: %v", fig.Scalars["match_acc@err=5ms"])
	}
	if fig.Scalars["match_acc@err=40ms"] > 0.5 {
		t.Fatal("gross sync error should break matching")
	}
}

func TestIntegrationM1PredictiveScheduler(t *testing.T) {
	fig := M1(itOpts)
	pred := fig.Scalars["mean_ms:predictive (learned)"]
	def := fig.Scalars["mean_ms:proactive+bsr (default)"]
	oracle := fig.Scalars["mean_ms:oracle"]
	if pred == 0 || def == 0 {
		t.Fatalf("predictive row missing: %v", fig.Scalars)
	}
	if pred >= def {
		t.Fatalf("learned scheduler %v should beat default %v", pred, def)
	}
	// §5.2 inflation claim for the ML variant too.
	if pred-oracle > (def-oracle)*6/10 {
		t.Fatalf("predictive inflation %.2f not well under 60%% of default %.2f", pred-oracle, def-oracle)
	}
}

func TestIntegrationS1DuplexingShapes(t *testing.T) {
	fig := S1PHYContexts(itOpts)
	// Longer slices quantize coarser; FDD and mmWave-like cadence are
	// finer than the paper's 2.5 ms.
	paper := fig.Scalars["spread_p90_ms:tdd-2.5ms (paper)"]
	long := fig.Scalars["spread_p90_ms:tdd-5ms (long slice)"]
	mm := fig.Scalars["spread_p90_ms:tdd-1.25ms (mmWave-like)"]
	if mm >= paper {
		t.Fatalf("finer slices should shrink spread: mmWave %v vs paper %v", mm, paper)
	}
	if long < paper {
		t.Fatalf("longer slices should not shrink spread: long %v vs paper %v", long, paper)
	}
	if fig.Scalars["quantum_ms:fdd"] != 0.5 {
		t.Fatalf("FDD quantum: %v", fig.Scalars["quantum_ms:fdd"])
	}
}

func TestIntegrationS2AccessSignatures(t *testing.T) {
	fig := S2AccessNetworks(itOpts)
	// LEO pays propagation: highest median delay.
	if fig.Scalars["ul_p50_ms:leo"] <= fig.Scalars["ul_p50_ms:5g"] ||
		fig.Scalars["ul_p50_ms:leo"] <= fig.Scalars["ul_p50_ms:wifi"] {
		t.Fatalf("LEO should have the largest median: %v", fig.Scalars)
	}
	// The wired reference has the tightest tail.
	for _, k := range []string{"5g", "wifi", "leo"} {
		if fig.Scalars["ul_p99_ms:wired"] >= fig.Scalars["ul_p99_ms:"+k] {
			t.Fatalf("wired p99 should undercut %s: %v vs %v",
				k, fig.Scalars["ul_p99_ms:wired"], fig.Scalars["ul_p99_ms:"+k])
		}
	}
	// 5G's phantom overuse exceeds the wired reference's.
	if fig.Scalars["overuse:5g"] <= fig.Scalars["overuse:wired"] {
		t.Fatalf("5G should trip GCC more than wired: %v", fig.Scalars)
	}
}

func TestIntegrationFigureRendering(t *testing.T) {
	fig := Fig6(itOpts)
	out := fig.String()
	if !strings.Contains(out, "F6") || !strings.Contains(out, "==") {
		t.Fatalf("render: %q", out)
	}
}

func TestIntegrationPublicAPIRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 5 * 1e9 // 5s
	res := Run(cfg)
	if res.Report == nil || len(res.Report.Packets) == 0 {
		t.Fatal("public Run produced no report")
	}
	if res.Report.Attribute().Packets == 0 {
		t.Fatal("attribution empty")
	}
}

func TestIntegrationS3LearnerClouded(t *testing.T) {
	fig := S3LearningCC(itOpts)
	wired := fig.Scalars["rate_kbps:wired"]
	fiveG := fig.Scalars["rate_kbps:5g"]
	if fiveG >= wired {
		t.Fatalf("learner should achieve less on 5G: wired=%.0f 5g=%.0f", wired, fiveG)
	}
	if fiveG > 0.8*wired {
		t.Fatalf("5G penalty too small: wired=%.0f 5g=%.0f", wired, fiveG)
	}
	if fig.Scalars["decisions:5g"] < 20 {
		t.Fatal("too few decisions to judge")
	}
}

func TestIntegrationFig3DownlinkStable(t *testing.T) {
	fig := Fig3(itOpts)
	dl := fig.Scalars["dl_media_jitter_range_ms"]
	ul := fig.Scalars["uplink_jitter_range_ms"]
	if dl == 0 {
		t.Fatal("downlink media series missing (TwoParty not wired?)")
	}
	if dl >= ul {
		t.Fatalf("downlink jitter %.1f should be below uplink %.1f — takeaway (c)", dl, ul)
	}
}

func TestIntegrationS4AppSensitivity(t *testing.T) {
	fig := S4AppDiversity(itOpts)
	// Gaming: BSR-only ruins responsiveness, combined (proactive) saves it.
	if fig.Scalars["late_inputs:cloud-gaming@5g-bsr-only"] <=
		fig.Scalars["late_inputs:cloud-gaming@5g-combined"] {
		t.Fatalf("gaming late-input ordering wrong: %v", fig.Scalars)
	}
	// Web bursts disperse more on 5G than on the wired link (the 2.5 ms
	// grant trickle vs smooth serialization), independent of base
	// propagation.
	if fig.Scalars["burst_spread_p95_ms:web@5g-combined"] <= fig.Scalars["burst_spread_p95_ms:web@wired"] {
		t.Fatalf("web burst dispersion should be larger on 5G: %v vs %v",
			fig.Scalars["burst_spread_p95_ms:web@5g-combined"], fig.Scalars["burst_spread_p95_ms:web@wired"])
	}
	// Bulk upload throughput barely cares about the scheduler.
	a := fig.Scalars["mbps:upload@5g-combined"]
	b := fig.Scalars["mbps:upload@5g-bsr-only"]
	if a == 0 || b == 0 {
		t.Fatal("upload throughput missing")
	}
	if b < a*0.85 {
		t.Fatalf("upload should be scheduler-insensitive: combined %.1f vs bsr %.1f", a, b)
	}
}

package athena

import (
	"time"

	"athena/internal/experiment"
	"athena/internal/packet"
	"athena/internal/ran"
	"athena/internal/rtp"
	"athena/internal/scenario"
	"athena/internal/stats"
	"athena/internal/units"
)

func init() {
	experiment.MustRegister(
		Experiment{ID: "F3", Family: "figure", Tags: []string{"figure", "delay", "probe", "smoke"},
			Title:       "One-Way Delay in ICMP and Zoom RTP Media Traffic",
			Description: "Fig 3: the 5G uplink dominates jitter; probes, WAN and the downlink stay low and stable.",
			Gen:         Fig3},
		Experiment{ID: "F4", Family: "figure", Tags: []string{"figure", "delay", "media"},
			Title:       "Zoom audio experiences lower delay than video (RAN delay CDF)",
			Description: "Fig 4: audio's single small packets beat video's multi-packet frames through the RAN.",
			Gen:         Fig4},
		Experiment{ID: "F5", Family: "figure", Tags: []string{"figure", "delay", "scheduling"},
			Title:       "Delay spread introduced in the RAN uplink",
			Description: "Fig 5: core-side delay spread steps on the 2.5 ms UL-slot grid.",
			Gen:         Fig5},
		Experiment{ID: "F6", Family: "figure", Tags: []string{"figure", "schematic"},
			Title:       "5G frame structure: DL/UL switching and BSR-based uplink transmission",
			Description: "Fig 6: the TDD frame structure and BSR/grant timeline, rendered from live cell config.",
			Gen:         Fig6},
		Experiment{ID: "F7", Family: "figure", Tags: []string{"figure", "qoe"},
			Title:       "5G degradation: QoE vs wired network with equal emulated capacity",
			Description: "Fig 7: the same call loses on bitrate, jitter, frame rate and SSIM versus an equal-capacity wired link.",
			Gen:         Fig7},
		Experiment{ID: "F8", Family: "figure", Tags: []string{"figure", "adaptation", "media"},
			Title:       "Zoom adaptation: frame-rate reaction to delay and jitter",
			Description: "Fig 8: a >1 s delay episode forces the 14 fps SVC set; a jitter episode causes transient skipping.",
			Gen:         Fig8},
	)
}

// cdfPoints renders a sample set as CDF curve points.
func cdfPoints(xs []float64, n int) []stats.Point {
	return stats.NewCDF(xs).Points(n)
}

// Fig3 regenerates the one-way-delay time series of Fig 3: RTP sender→core
// (the 5G uplink), RTP core→receiver (WAN + SFU), and ICMP core→SFU→core
// probes, under the paper's cross-traffic phase schedule (time-compressed).
// Takeaway to reproduce: the uplink is the dominant jitter source; probes
// and the downstream segment stay low and stable.
func Fig3(o Options) *FigureData {
	cfg := DefaultConfig()
	cfg.Seed = o.SeedOrDefault()
	cfg.Duration = o.Scaled(2 * time.Minute)
	cfg.TwoParty = true // the far party's stream exercises the downlink
	cfg.CrossUEs = 6
	q := cfg.Duration / 4
	cfg.CrossPhases = []ran.CrossPhase{
		{Start: 0, Rate: 0},
		{Start: q, Rate: 14 * units.Mbps},
		{Start: 2 * q, Rate: 16 * units.Mbps},
		{Start: 3 * q, Rate: 18 * units.Mbps},
	}
	res := Run(cfg)

	fig := NewFigure("F3", "One-Way Delay in ICMP and Zoom RTP Media Traffic")
	up := stats.NewSeries("rtp-1-2")
	down := stats.NewSeries("rtp-2-3*-4")
	for _, v := range res.Report.Packets {
		if v.Kind != packet.KindVideo && v.Kind != packet.KindAudio {
			continue
		}
		if v.SeenCore {
			up.Add(v.SentAt, float64(v.ULDelay)/float64(time.Millisecond))
		}
		if v.SeenRecv && v.SeenCore {
			down.Add(v.CoreAt, float64(v.WANDelay)/float64(time.Millisecond))
		}
	}
	icmp := stats.NewSeries("icmp-2-3-1")
	for _, r := range res.Prober.Results {
		icmp.Add(r.SentAt, float64(r.OWD())/float64(time.Millisecond))
	}
	fig.Add("RTP 1-2 (uplink) OWD ms", up.Bin(time.Second, stats.Mean))
	fig.Add("RTP 2-3*-4 OWD ms", down.Bin(time.Second, stats.Mean))
	fig.Add("ICMP 2-3-1 OWD ms", icmp.Bin(time.Second, stats.Mean))

	upS := stats.Summarize(up.Values())
	downS := stats.Summarize(down.Values())
	icmpS := stats.Summarize(icmp.Values())
	fig.Scalars["uplink_p95_ms"] = upS.P95
	fig.Scalars["downstream_p95_ms"] = downS.P95
	fig.Scalars["icmp_p95_ms"] = icmpS.P95
	fig.Scalars["uplink_jitter_range_ms"] = upS.P99 - upS.P10
	fig.Note("uplink jitter range (p99-p10) %.1f ms vs downstream %.1f ms vs probes %.1f ms",
		upS.P99-upS.P10, downS.P99-downS.P10, icmpS.P99-icmpS.P10)

	// Takeaway (c): the 5G RAN *downlink* also provides low and stable
	// delay — measured on the far party's media stream.
	if res.DLReceiver != nil && len(res.DLReceiver.VideoOWDMS) > 0 {
		dlS := stats.Summarize(res.DLReceiver.VideoOWDMS)
		fig.Scalars["dl_media_p95_ms"] = dlS.P95
		fig.Scalars["dl_media_jitter_range_ms"] = dlS.P99 - dlS.P10
		fig.Note("5G downlink media jitter range %.1f ms — no BSR cycle, no grant trickle", dlS.P99-dlS.P10)
	}
	return fig
}

// Fig4 regenerates the audio-vs-video RAN-delay CDFs of Fig 4. Audio
// samples (single small packets) are less delayed; video's multi-packet
// frames absorb the scheduling delay spread.
func Fig4(o Options) *FigureData {
	cfg := DefaultConfig()
	cfg.Seed = o.SeedOrDefault()
	cfg.Duration = o.Scaled(90 * time.Second)
	res := Run(cfg)

	fig := NewFigure("F4", "Zoom audio experiences lower delay than video (RAN delay CDF)")
	// The extractors return fresh slices, so each sample set sorts once
	// in place and serves curve points and every quantile from that sort.
	audio := stats.NewCDFInPlace(res.Report.ULDelaysMS(packet.KindAudio))
	video := stats.NewCDFInPlace(res.Report.ULDelaysMS(packet.KindVideo))
	fig.Add("audio CDF (x=ms)", audio.Points(40))
	fig.Add("video CDF (x=ms)", video.Points(40))
	fig.Scalars["audio_p50_ms"] = audio.Quantile(0.5)
	fig.Scalars["video_p50_ms"] = video.Quantile(0.5)
	fig.Scalars["audio_p99_ms"] = audio.Quantile(0.99)
	fig.Note("audio median below video median; both share a long tail from fades/retransmissions")
	return fig
}

// Fig5 regenerates the delay-spread CDFs of Fig 5 (sender vs 5G core) on
// an idle cell. The core-side spread steps in 2.5 ms increments — the UL
// slot period.
func Fig5(o Options) *FigureData {
	cfg := DefaultConfig()
	cfg.Seed = o.SeedOrDefault()
	cfg.Duration = o.Scaled(90 * time.Second)
	// The paper computes Fig 5 over a no-cross-traffic period.
	res := Run(cfg)

	fig := NewFigure("F5", "Delay spread introduced in the RAN uplink")
	sender, coreSp := res.Report.SpreadsMS()
	coreCDF := stats.NewCDFInPlace(coreSp)
	fig.Add("sender spread CDF (x=ms)", stats.NewCDFInPlace(sender).Points(30))
	fig.Add("5G-core spread CDF (x=ms)", coreCDF.Points(30))
	fig.Scalars["core_spread_p90_ms"] = coreCDF.Quantile(0.9)
	// Verify the 2.5 ms quantization and report it.
	quantized := 0
	for _, sp := range coreCDF.Values() {
		if r := sp / 2.5; r == float64(int(r)) {
			quantized++
		}
	}
	fig.Scalars["fraction_on_2.5ms_grid"] = float64(quantized) / float64(len(coreSp))
	fig.Note("core-side spreads fall on the 2.5 ms UL-slot grid (%d/%d)", quantized, len(coreSp))
	return fig
}

// Fig6 renders the TDD frame structure and BSR/grant timeline (the
// paper's schematic, emitted from the live cell configuration).
func Fig6(o Options) *FigureData {
	cfg := DefaultConfig()
	fig := NewFigure("F6", "5G frame structure: DL/UL switching and BSR-based uplink transmission")
	fig.Note("%s", cfg.RAN.FrameStructure())
	fig.Scalars["ul_period_ms"] = float64(cfg.RAN.ULPeriod()) / float64(time.Millisecond)
	fig.Scalars["sched_delay_ms"] = float64(cfg.RAN.SchedDelay) / float64(time.Millisecond)
	fig.Scalars["harq_rtt_ms"] = float64(cfg.RAN.HARQRTT) / float64(time.Millisecond)
	return fig
}

// Fig7 regenerates the four QoE CDFs of Fig 7: the same call over the 5G
// cell versus a fixed-latency wired link replaying the 5G run's TB-size
// capacity schedule. 5G should lose on all four metrics.
func Fig7(o Options) *FigureData {
	base := DefaultConfig()
	base.Seed = o.SeedOrDefault()
	base.Duration = o.Scaled(2 * time.Minute)
	base.CrossUEs = 6
	q := base.Duration / 4
	base.CrossPhases = []ran.CrossPhase{
		{Start: 0, Rate: 0},
		{Start: q, Rate: 14 * units.Mbps},
		{Start: 2 * q, Rate: 16 * units.Mbps},
		{Start: 3 * q, Rate: 18 * units.Mbps},
	}
	em := base
	em.Emulated = true
	// The paper's baseline uses tc with the cellular capacity "calculated
	// from the physical transport block sizes": the cell's per-slot TBS
	// capability as a constant rate, at a fixed 15 ms latency. (The
	// per-slot granted trace is available via TBSchedule for replay
	// studies, but grants track demand, not capacity.)
	em.EmulatedSchedule = []units.ByteCount{base.RAN.SlotCapacity()}
	// The two calls are independent, so they run concurrently; the 5G
	// baseline is also the config several mitigation studies reuse, so it
	// simulates once per process.
	rs := RunAll([]Config{base, em})
	g5, emr := rs[0], rs[1]

	fig := NewFigure("F7", "5G degradation: QoE vs wired network with equal emulated capacity")
	// Rate and fps extractors return fresh slices (in-place CDFs); jitter
	// and SSIM are fields of the shared memoized Result, so those copy.
	g5Rate := stats.NewCDFInPlace(g5.Receiver.ReceiveRates())
	emRate := stats.NewCDFInPlace(emr.Receiver.ReceiveRates())
	g5Jit := stats.NewCDF(g5.Receiver.FrameJitter)
	emJit := stats.NewCDF(emr.Receiver.FrameJitter)
	g5FPS := stats.NewCDFInPlace(g5.Receiver.Renderer.FrameRates())
	emFPS := stats.NewCDFInPlace(emr.Receiver.Renderer.FrameRates())
	g5SSIM := stats.NewCDF(g5.Receiver.Renderer.SSIMs)
	emSSIM := stats.NewCDF(emr.Receiver.Renderer.SSIMs)
	fig.Add("5G receive bitrate CDF (x=kbps)", g5Rate.Points(30))
	fig.Add("emulated receive bitrate CDF (x=kbps)", emRate.Points(30))
	fig.Add("5G frame jitter CDF (x=ms)", g5Jit.Points(30))
	fig.Add("emulated frame jitter CDF (x=ms)", emJit.Points(30))
	fig.Add("5G frame rate CDF (x=fps)", g5FPS.Points(30))
	fig.Add("emulated frame rate CDF (x=fps)", emFPS.Points(30))
	fig.Add("5G SSIM CDF", g5SSIM.Points(30))
	fig.Add("emulated SSIM CDF", emSSIM.Points(30))

	fig.Scalars["5g_bitrate_p50_kbps"] = g5Rate.Quantile(0.5)
	fig.Scalars["em_bitrate_p50_kbps"] = emRate.Quantile(0.5)
	fig.Scalars["5g_jitter_p50_ms"] = g5Jit.Quantile(0.5)
	fig.Scalars["em_jitter_p50_ms"] = emJit.Quantile(0.5)
	fig.Scalars["5g_fps_p50"] = g5FPS.Quantile(0.5)
	fig.Scalars["em_fps_p50"] = emFPS.Quantile(0.5)
	fig.Scalars["5g_ssim_p50"] = g5SSIM.Quantile(0.5)
	fig.Scalars["em_ssim_p50"] = emSSIM.Quantile(0.5)
	fig.Note("5G delivers lower bitrate, higher media jitter, lower frame rate and lower SSIM than the equal-capacity wired baseline")
	return fig
}

// Fig8 regenerates the Zoom adaptation time series of Fig 8: per-SVC-layer
// bitrates, frame rate, and delay, with a >1 s delay episode (→ permanent
// 14 fps downgrade) and a jitter episode (→ transient ~20 fps skipping).
func Fig8(o Options) *FigureData {
	cfg := DefaultConfig()
	cfg.Seed = o.SeedOrDefault()
	cfg.Duration = o.Scaled(3 * time.Minute)
	third := cfg.Duration / 6
	cfg.Spikes = []Spike{{Start: 2 * third, End: 2*third + 8*time.Second, Extra: 1100 * time.Millisecond}}
	cfg.Jitters = []JitterEpisode{{Start: 4 * third, End: 5 * third, Amp: 130 * time.Millisecond}}
	res := Run(cfg)

	fig := NewFigure("F8", "Zoom adaptation: frame-rate reaction to delay and jitter")
	for _, l := range []rtp.SVCLayer{rtp.LayerBase, rtp.LayerLowFPSEnhancement, rtp.LayerHighFPSEnhancement, rtp.LayerAudio} {
		if pts := res.Receiver.LayerRateSeries(l); pts != nil {
			fig.Add("bitrate kbps: "+l.String(), pts)
		}
	}
	fig.Add("frame rate fps", res.Receiver.Renderer.FrameRateSeries())
	fig.Add("sender OWD ms", res.Sender.OWDSeries.Bin(time.Second, stats.Mean))
	fig.Add("encoder mode fps", res.Sender.ModeSeries.Bin(time.Second, stats.MaxOf))
	fig.Scalars["mode_changes"] = float64(res.Sender.Adapt().ModeChanges())
	fig.Scalars["skip_events"] = float64(res.Sender.SkipEvents)
	fig.Note("delay episode switches the SVC layer set to 14 fps; jitter episode causes transient frame skipping")
	return fig
}

// Spike and JitterEpisode re-export the scenario injection types for
// custom experiments.
type (
	Spike         = scenario.Spike
	JitterEpisode = scenario.JitterEpisode
)

// TBSchedule extracts the per-UL-slot capacity schedule from a 5G run for
// the Fig 7 emulated baseline.
func TBSchedule(res *Result) []units.ByteCount { return scenario.TBSchedule(res) }

package athena

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"athena/internal/stats"
)

func sampleFig() *FigureData {
	fig := NewFigure("T1", "test figure")
	fig.Add("line-a", []stats.Point{{X: 1, Y: 2}, {X: 3, Y: 4}})
	fig.Add("line-b", []stats.Point{{X: 5, Y: 6}})
	fig.Scalars["zeta"] = 1.5
	fig.Scalars["alpha"] = 0.25
	return fig
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFig().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "series,x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "line-a,1,2" || lines[3] != "line-b,5,6" {
		t.Fatalf("rows: %v", lines)
	}
}

func TestWriteScalarsCSVSorted(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFig().WriteScalarsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[1] != "alpha,0.25" || lines[2] != "zeta,1.5" {
		t.Fatalf("not sorted: %v", lines)
	}
}

// Save must return the same path list in the same order on every call
// and write the same bytes, so manifests embedding artifact paths and
// digests diff cleanly across runs.
func TestSavePathsDeterministic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	first, err := sampleFig().Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := map[string][]byte{}
	for _, p := range first {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		content[p] = b
	}
	second, err := sampleFig().Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("path counts differ: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("path order changed: %v vs %v", first, second)
		}
		b, err := os.ReadFile(second[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(content[first[i]], b) {
			t.Fatalf("%s bytes changed between saves", first[i])
		}
	}
}

func TestSaveWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	paths, err := sampleFig().Save(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatalf("%s empty", p)
		}
		if !strings.Contains(p, "t1.") {
			t.Fatalf("id not lowercased in %s", p)
		}
	}
}

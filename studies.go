package athena

import (
	"context"
	"fmt"
	"time"

	"athena/internal/apps"
	"athena/internal/core"
	"athena/internal/experiment"
	"athena/internal/netem"
	"athena/internal/packet"
	"athena/internal/ran"
	"athena/internal/runner"
	"athena/internal/scenario"
	"athena/internal/sim"
	"athena/internal/stats"
	"athena/internal/units"
)

func init() {
	experiment.MustRegister(
		Experiment{ID: "S1", Family: "study", Tags: []string{"study", "phy", "gcc"},
			Title:       "GCC across physical-layer contexts: duplexing and slice length (§5.1)",
			Description: "S1: the same GCC call over TDD slice lengths, 5G-FDD and LTE-FDD.",
			Gen:         S1PHYContexts},
		Experiment{ID: "S2", Family: "study", Tags: []string{"study", "access", "smoke"},
			Title:       "One VCA, many access networks: artifact structure differs (§5.1)",
			Description: "S2: 5G, Wi-Fi, LEO satellite and wired each inject a different artifact signature.",
			Gen:         S2AccessNetworks},
		Experiment{ID: "S3", Family: "study", Tags: []string{"study", "cc", "learning"},
			Title:       "Learning-based CC still sees a clouded view on 5G (§1)",
			Description: "S3: a PCC-Vivace-style learner reads RAN latency artifacts as utility gradients.",
			Gen:         S3LearningCC},
		Experiment{ID: "S4", Family: "study", Tags: []string{"study", "apps"},
			Title:       "Application classes feel different RAN artifacts (§5.1)",
			Description: "S4: gaming input pays the grant cycle, bursts pay the spread, bulk upload barely notices.",
			Gen:         S4AppDiversity},
		Experiment{ID: "S8", Family: "study", Tags: []string{"study", "apps", "workloads"},
			Title:       "Mixed-workload cell: per-app attribution through one shared RAN (§5.1)",
			Description: "S8: VCA, cloud gaming, bulk upload and audio-only share a cell; Athena attributes each family's delay separately.",
			Gen:         S8MixedWorkloads},
		Experiment{ID: "S9", Family: "study", Tags: []string{"study", "apps", "sched"},
			Title:       "QoE-aware scheduling: app hints reorder the cell's grant budget (§5.2)",
			Description: "S9: the same mixed cell under default vs app-hint arbitration — interactive families gain, elastic bulk pays.",
			Gen:         S9QoEScheduler},
	)
}

// S1 is the §5.1 future-work study the paper commits to: "work toward a
// GCC simulator that evaluates video-conferencing behavior in various
// physical-layer contexts. ... different base stations use different
// duplexing strategies. Also, the wireless spectrum can be divided along
// multiple axes. Time slicing (as in TDD) is done using different slice
// lengths in differing frequency bands, and some cellular networks use
// Frequency Division Duplexing (FDD) for uplink and downlink, resulting
// in differing impacts on application-layer latencies."
//
// The same GCC-driven call runs over four PHY contexts; reported per
// context: delay-spread quantum, uplink delay quantiles, GCC phantom
// overuse, and achieved rate.
func S1PHYContexts(o Options) *FigureData {
	fig := NewFigure("S1", "GCC across physical-layer contexts: duplexing and slice length (§5.1)")
	contexts := []struct {
		name string
		mut  func(*ran.Config)
	}{
		{"tdd-2.5ms (paper)", func(c *ran.Config) {}},
		{"tdd-5ms (long slice)", func(c *ran.Config) {
			c.SlotsPerPeriod = 10
		}},
		{"tdd-1.25ms (mmWave-like)", func(c *ran.Config) {
			// 120 kHz SCS: 125 µs slots, same DDDDU ratio, 625 µs period
			// scaled ×2 for a 1.25 ms UL cadence.
			c.SlotDuration = 250 * time.Microsecond
		}},
		{"fdd", func(c *ran.Config) {
			c.Duplex = ran.DuplexFDD
			// Same proactive *rate*: 1600 B per 2.5 ms becomes 320 B per
			// 0.5 ms slot.
			c.ProactiveTBS = 320
		}},
		{"lte-fdd", func(c *ran.Config) {
			lte := ran.LTEDefaults()
			// Preserve the study's channel parameters; take LTE's frame
			// structure and timing constants.
			lte.BLER = c.BLER
			lte.FadeMeanGood, lte.FadeMeanBad = c.FadeMeanGood, c.FadeMeanBad
			lte.FadeBLER, lte.FadeCapacityFactor = c.FadeBLER, c.FadeCapacityFactor
			lte.CellULRate = c.CellULRate
			*c = lte
		}},
	}
	cfgs := make([]Config, len(contexts))
	for i, ctx := range contexts {
		cfg := DefaultConfig()
		cfg.Seed = o.SeedOrDefault()
		cfg.Duration = o.Scaled(60 * time.Second)
		cfg.CaptureGCC = true
		ctx.mut(&cfg.RAN)
		cfgs[i] = cfg
	}
	for i, res := range RunAll(cfgs) {
		key := contexts[i].name
		sum := res.Report.DelaySummary(packet.KindVideo)
		_, coreSp := res.Report.SpreadsMS()
		fig.Scalars["ul_p50_ms:"+key] = sum.P50
		fig.Scalars["ul_p95_ms:"+key] = sum.P95
		fig.Scalars["spread_p90_ms:"+key] = stats.QuantileInPlace(coreSp, 0.9)
		fig.Scalars["overuse:"+key] = float64(res.GCC.OveruseCount)
		fig.Scalars["rate_kbps:"+key] = res.GCC.TargetRate().Kbits()
		fig.Scalars["quantum_ms:"+key] = float64(cfgs[i].RAN.ULPeriod()) / float64(time.Millisecond)
		fig.Add(fmt.Sprintf("video UL delay CDF (x=ms): %s", key),
			stats.NewCDFInPlace(res.Report.ULDelaysMS(packet.KindVideo)).Points(30))
	}
	fig.Note("finer uplink cadence (short slices, FDD) shrinks the delay-spread quantum and the median uplink delay")
	fig.Note("but under channel fading, finer cadence also multiplies the gradient samples per trendline window and thins per-slot capacity, so GCC's phantom overuse does not automatically improve — the duplexing choice interacts with channel dynamics, which is precisely the §5.1 design space Athena exists to explore")
	return fig
}

// S2 is the §5.1 breadth study: the same VCA-over-GCC call across access
// technologies with fundamentally different artifact structure — the
// paper's 5G cell, a Wi-Fi-like contention channel, and a LEO-satellite
// path with handover-driven delay steps — plus the wired reference.
func S2AccessNetworks(o Options) *FigureData {
	fig := NewFigure("S2", "One VCA, many access networks: artifact structure differs (§5.1)")
	accesses := []AccessKind{Access5G, AccessWiFi, AccessLEO, AccessWired}
	cfgs := make([]Config, len(accesses))
	for i, acc := range accesses {
		cfg := DefaultConfig()
		cfg.Seed = o.SeedOrDefault()
		cfg.Duration = o.Scaled(60 * time.Second)
		cfg.Access = acc
		cfg.CaptureGCC = true
		cfgs[i] = cfg
	}
	for i, res := range RunAll(cfgs) {
		key := string(accesses[i])
		sum := res.Report.DelaySummary(packet.KindVideo)
		fig.Scalars["ul_p50_ms:"+key] = sum.P50
		fig.Scalars["ul_p99_ms:"+key] = sum.P99
		fig.Scalars["overuse:"+key] = float64(res.GCC.OveruseCount)
		fig.Scalars["rate_kbps:"+key] = res.GCC.TargetRate().Kbits()
		// FrameJitter belongs to the shared memoized Result: quantile on a
		// copy. FrameRates returns a fresh slice: quantile in place.
		fig.Scalars["frame_jitter_p50_ms:"+key] = stats.Quantile(res.Receiver.FrameJitter, 0.5)
		fig.Scalars["fps_p50:"+key] = stats.QuantileInPlace(res.Receiver.Renderer.FrameRates(), 0.5)
		fig.Add("video UL delay CDF (x=ms): "+key,
			stats.NewCDFInPlace(res.Report.ULDelaysMS(packet.KindVideo)).Points(30))
	}
	fig.Note("each access technology injects a different artifact: 5G quantizes and over-grants, Wi-Fi adds contention variance, LEO adds handover delay steps; only the wired path is artifact-free")
	return fig
}

// S3 tests the paper's §1 caution about learning-based congestion control
// ("While some proposals leverage machine learning-based approaches to
// deal with these hard-to-predict artifacts, we show here that they still
// largely see a clouded view of packet arrivals"): a PCC-Vivace-style
// online learner runs the same call on the wired reference and on the 5G
// cell. Reported per path: achieved rate, uplink p95, and the
// rate-decision oscillation (stddev of relative rate steps) — the
// learner's confusion metric.
func S3LearningCC(o Options) *FigureData {
	fig := NewFigure("S3", "Learning-based CC still sees a clouded view on 5G (§1)")
	accesses := []AccessKind{AccessWired, Access5G}
	cfgs := make([]Config, len(accesses))
	for i, acc := range accesses {
		cfg := DefaultConfig()
		cfg.Seed = o.SeedOrDefault()
		cfg.Duration = o.Scaled(90 * time.Second)
		cfg.Access = acc
		cfg.Controller = scenario.CtlPCC
		cfgs[i] = cfg
	}
	for i, res := range RunAll(cfgs) {
		key := string(accesses[i])
		fig.Scalars["rate_kbps:"+key] = stats.QuantileInPlace(res.Receiver.ReceiveRates(), 0.5)
		fig.Scalars["ul_p95_ms:"+key] = res.Report.DelaySummary(packet.KindVideo).P95
		fig.Scalars["decisions:"+key] = float64(res.PCC.Decisions)
		fig.Scalars["down_decisions:"+key] = float64(res.PCC.DownDecisions)
		fig.Scalars["step_stddev:"+key] = rateStepStddev(res.PCC.RateTrace)
		fig.Add("PCC base rate kbps over decisions: "+key, tracePoints(res.PCC.RateTrace))
	}
	fig.Note("with identical capacity headroom, the learner achieves a lower rate and brakes more often on the 5G cell: RAN latency artifacts read as utility gradients")
	return fig
}

// rateStepStddev is the standard deviation of relative per-decision rate
// steps.
func rateStepStddev(trace []float64) float64 {
	if len(trace) < 2 {
		return 0
	}
	steps := make([]float64, 0, len(trace)-1)
	for i := 1; i < len(trace); i++ {
		steps = append(steps, (trace[i]-trace[i-1])/trace[i-1])
	}
	var r stats.Running
	for _, s := range steps {
		r.Add(s)
	}
	return r.Stddev()
}

func tracePoints(trace []float64) []stats.Point {
	pts := make([]stats.Point, len(trace))
	for i, v := range trace {
		pts[i] = stats.Point{X: float64(i), Y: v}
	}
	return pts
}

// S4 runs the §5.1 application-diversity study: the uplink traffic
// patterns of four application classes (cloud-gaming input, web browsing,
// bulk upload, VoD chunk requests) traverse the 5G cell under each grant
// strategy and the wired reference. Different artifacts hurt different
// classes: sporadic tiny packets pay the grant cycle, bursts pay the
// delay spread, bulk mostly doesn't care.
func S4AppDiversity(o Options) *FigureData {
	fig := NewFigure("S4", "Application classes feel different RAN artifacts (§5.1)")
	classes := []apps.Class{apps.ClassGaming, apps.ClassWeb, apps.ClassUpload, apps.ClassVoD}
	type path struct {
		name  string
		sched ran.SchedulerKind
		wired bool
	}
	paths := []path{
		{"5g-combined", ran.SchedCombined, false},
		{"5g-bsr-only", ran.SchedBSROnly, false},
		{"wired", 0, true},
	}
	dur := o.Scaled(30 * time.Second)
	type cell struct {
		class apps.Class
		path  path
	}
	var cells []cell
	for _, cl := range classes {
		for _, p := range paths {
			cells = append(cells, cell{cl, p})
		}
	}
	// Each cell owns its simulator, allocator and generator, so the grid
	// fans out across the shared pool; metrics land in index-disjoint slots
	// and the scalars are emitted serially in grid order below.
	metrics := make([]apps.Metrics, len(cells))
	runner.Default.ForEach(context.Background(), len(cells), func(i int) {
		cl, p := cells[i].class, cells[i].path
		s := sim.New(o.SeedOrDefault())
		var alloc packet.Alloc
		var g *apps.Generator
		tap := packet.HandlerFunc(func(pk *packet.Packet) { g.OnArrival(pk, s.Now()) })
		var ingress packet.Handler
		if p.wired {
			ingress = netem.NewLink(s, "wired", 15*time.Millisecond, 20*units.Mbps, tap)
		} else {
			cell := ran.New(s, ran.Defaults(), tap)
			ingress = cell.AttachUE(1, p.sched)
		}
		g = apps.New(s, &alloc, cl, 1, s.NewStream(), ingress)
		g.Start(dur)
		s.RunUntil(dur + 2*time.Second)
		metrics[i] = g.Metrics(dur)
	})
	for i, c := range cells {
		m := metrics[i]
		key := fmt.Sprintf("%s@%s", c.class, c.path.name)
		fig.Scalars["p50_ms:"+key] = m.DelayP50MS
		fig.Scalars["p99_ms:"+key] = m.DelayP99MS
		switch c.class {
		case apps.ClassGaming:
			fig.Scalars["late_inputs:"+key] = m.LateInputs
		case apps.ClassWeb, apps.ClassVoD:
			fig.Scalars["burst_p95_ms:"+key] = m.BurstP95MS
			fig.Scalars["burst_spread_p95_ms:"+key] = m.BurstSpreadP95
		case apps.ClassUpload:
			fig.Scalars["mbps:"+key] = m.ThroughputMbps
		}
	}
	fig.Note("gaming input pays the grant machinery (proactive rescues it, BSR-only ruins it); web/VoD bursts pay the 2.5 ms spread; bulk upload barely notices — per-class sensitivity is the §5.1 matching problem")
	return fig
}

// scoreKind maps each workload family to the packet kind its primary
// uplink stream rides — the kind whose correlated delay summary is the
// family's RAN-side QoE signal.
func scoreKind(k scenario.WorkloadKind) packet.Kind {
	switch k {
	case scenario.WorkloadCloudGaming, scenario.WorkloadBulkTransfer:
		return packet.KindData
	case scenario.WorkloadAudioOnly:
		return packet.KindAudio
	}
	return packet.KindVideo
}

// S8MixedWorkloads is the workload-layer acceptance study: one cell
// carrying all four application families at once, every UE correlated
// through the same capture points, with per-family delay summaries,
// root-cause attribution, and the family's own QoE score — the paper's
// "and Beyond" claim made concrete.
func S8MixedWorkloads(o Options) *FigureData {
	fig := NewFigure("S8", "Mixed-workload cell: per-app attribution through one shared RAN (§5.1)")
	top := scenario.NewTopology(8)
	top.Seed = o.SeedOrDefault()
	top.Duration = o.Scaled(12 * time.Second)
	top.MixWorkloads()
	res := scenario.RunTopology(top)

	perFam := map[scenario.WorkloadKind][]float64{}
	for _, u := range res.UEs {
		key := fmt.Sprintf("%s:ue%d", u.Workload, u.ID)
		sum := u.Report.DelaySummary(scoreKind(u.Workload))
		fig.Scalars["ul_p50_ms:"+key] = sum.P50
		fig.Scalars["ul_p99_ms:"+key] = sum.P99
		att := u.Report.Attribute()
		for _, c := range []core.Cause{core.CauseQueueSlot, core.CauseBSR, core.CauseHARQ} {
			fig.Scalars[fmt.Sprintf("%s_ms:%s", c, key)] = att.MeanMS(c)
		}
		for name, v := range u.Score.Scalars {
			fig.Scalars[fmt.Sprintf("qoe_%s:%s", name, key)] = v
		}
		perFam[u.Workload] = append(perFam[u.Workload], sum.P50)
	}
	for fam, p50s := range perFam {
		fig.Scalars["fam_ul_p50_ms:"+string(fam)] = stats.Quantile(p50s, 0.5)
	}
	fig.Note("four families, one RAN: the correlator joins each family's own flows (media, input events, bulk data, Opus frames) without per-app plumbing — attribution stays per-UE, per-cause")
	return fig
}

// S9QoEScheduler runs the same mixed cell under the default arbitration
// and the StreamGuard-style app-hint scheduler: the study reports each
// family's QoE under both, making the trade explicit — interactive
// families gain timeliness, elastic bulk gives up throughput.
func S9QoEScheduler(o Options) *FigureData {
	fig := NewFigure("S9", "QoE-aware scheduling: app hints reorder the cell's grant budget (§5.2)")
	run := func(sched ran.SchedulerKind) *scenario.TopologyResult {
		top := scenario.NewTopology(8)
		top.Seed = o.SeedOrDefault()
		top.Duration = o.Scaled(12 * time.Second)
		top.MixWorkloads()
		for i := range top.UEs {
			top.UEs[i].Sched = sched
		}
		// Background load so arbitration order decides who waits.
		top.CrossUEs = 2
		top.CrossPhases = []ran.CrossPhase{{Start: 0, Rate: 4 * units.Mbps}}
		return scenario.RunTopology(top)
	}
	scheds := []ran.SchedulerKind{ran.SchedCombined, ran.SchedQoEAware}
	results := make([]*scenario.TopologyResult, len(scheds))
	runner.Default.ForEach(context.Background(), len(scheds), func(i int) {
		results[i] = run(scheds[i])
	})
	headline := map[scenario.WorkloadKind]string{
		scenario.WorkloadVCA:          "video_owd_p95_ms",
		scenario.WorkloadCloudGaming:  "input_p95_ms",
		scenario.WorkloadBulkTransfer: "goodput_mbps",
		scenario.WorkloadAudioOnly:    "delay_p95_ms",
	}
	for i, sched := range scheds {
		for _, u := range results[i].UEs {
			key := fmt.Sprintf("%s:ue%d@%s", u.Workload, u.ID, sched)
			fig.Scalars["qoe_"+headline[u.Workload]+":"+key] = u.Score.Scalars[headline[u.Workload]]
			fig.Scalars["ul_p95_ms:"+key] = u.Report.DelaySummary(scoreKind(u.Workload)).P95
		}
	}
	fig.Note("qoe-aware serves grant allocations in hint-tier order and reclaims unused speculative grants; compare each family's headline metric across '@%s' and '@%s'", scheds[0], scheds[1])
	return fig
}

// Ensure study symbols referenced before definition elsewhere compile.
var _ = units.Kbps

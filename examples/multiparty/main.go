// Multiparty: four VCA participants share one private 5G cell, each with
// its own sender, receiver, congestion controller and flow IDs — the
// cell's schedulers arbitrate their real competing uplink buffers. The
// example prints each participant's per-flow delay attribution, then
// verifies two topology guarantees: the run is deterministic (a second
// run is byte-identical) and per-packet uplink + WAN attribution sums
// exactly to each flow's end-to-end one-way delay.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"athena"
	"athena/internal/core"
	"athena/internal/packet"
)

func buildTopology() athena.Topology {
	top := athena.NewTopology(4)
	top.Duration = 10 * time.Second
	return top
}

// digest renders the determinism-relevant output of a run.
func digest(tr *athena.TopologyResult) string {
	var b strings.Builder
	for _, u := range tr.UEs {
		fmt.Fprintf(&b, "ue%d packets=%d\n", u.ID, len(u.Report.Packets))
		for _, v := range u.Report.Packets {
			fmt.Fprintf(&b, "%d/%d sent=%d core=%d recv=%d tbs=%v\n",
				v.Flow, v.Seq, v.SentAt, v.CoreAt, v.ReceiverAt, v.TBIDs)
		}
	}
	return b.String()
}

func main() {
	tr := athena.RunTopology(buildTopology())

	fmt.Printf("multiparty call: %d participants on one 5G cell, %v simulated\n\n",
		len(tr.UEs), tr.Top.Duration)

	ok := true
	for _, u := range tr.UEs {
		video, audio := u.Sender.SSRCs()
		fmt.Printf("participant %d (video flow %d, audio flow %d): %s\n",
			u.ID, video, audio, u.Report.DelaySummary(packet.KindVideo))
		byFlow := u.Report.AttributeByFlow()
		for _, flow := range []uint32{video, audio} {
			a, found := byFlow[flow]
			if !found {
				continue
			}
			fmt.Printf("  flow %d over %d packets: ", flow, a.Packets)
			for _, c := range []core.Cause{core.CauseQueueSlot, core.CauseBSR, core.CauseHARQ, core.CauseWAN, core.CauseSFU} {
				fmt.Printf("%s=%.1fms ", c, a.TotalMS[c])
			}
			fmt.Println()
		}

		// Invariant: the correlator's split of each delivered packet's
		// delay (uplink + WAN) reassembles its end-to-end OWD, flow by
		// flow.
		sumSplit := map[uint32]time.Duration{}
		sumOWD := map[uint32]time.Duration{}
		for _, v := range u.Report.Packets {
			if !v.SeenCore || !v.SeenRecv {
				continue
			}
			sumSplit[v.Flow] += v.ULDelay + v.WANDelay
			sumOWD[v.Flow] += v.ReceiverAt - v.SentAt
		}
		for flow, owd := range sumOWD {
			if sumSplit[flow] != owd {
				fmt.Printf("  MISMATCH flow %d: attribution sum %v != end-to-end OWD %v\n",
					flow, sumSplit[flow], owd)
				ok = false
			}
		}
	}

	fmt.Print("\ndeterminism: ")
	if digest(athena.RunTopology(buildTopology())) != digest(tr) {
		fmt.Println("FAILED — second run diverged")
		ok = false
	} else {
		fmt.Println("second run byte-identical")
	}

	if !ok {
		os.Exit(1)
	}
	fmt.Println("per-flow attribution sums match end-to-end OWDs for every participant")
}

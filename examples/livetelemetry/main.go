// livetelemetry demonstrates the streaming face of Athena (§5.1's
// "continuous, fine-grained measurement"): capture records and PHY
// telemetry are fed into a LiveCorrelator as they happen, and resolved
// per-packet root-cause attributions emerge with bounded latency — the
// feed a PHY-aware congestion controller or a RIC xApp would subscribe to.
package main

import (
	"fmt"
	"time"

	"athena"
	"athena/internal/core"
	"athena/internal/telemetry"
)

func main() {
	// Run a short call to obtain realistic traces, then replay them into
	// the live correlator as a tap would deliver them.
	cfg := athena.DefaultConfig()
	cfg.Duration = 10 * time.Second
	res := athena.Run(cfg)

	var emitted int
	var bsrWaits, harqHits int
	lc := core.NewLive(core.Input{
		SlotDuration: cfg.RAN.SlotDuration,
		CoreDelay:    cfg.RAN.CoreDelay,
	}, func(v core.PacketView) {
		emitted++
		if v.BSRWait > 0 {
			bsrWaits++
		}
		if v.HARQDelay > 0 {
			harqHits++
		}
		// Print a live line for the first few resolved packets.
		if emitted <= 8 {
			fmt.Printf("live: %-5s seq=%-4d ul=%6.2fms queue=%5.2fms bsr=%5.2fms harq=%5.2fms tbs=%v\n",
				v.Kind, v.Seq,
				ms(v.ULDelay), ms(v.QueueWait), ms(v.BSRWait), ms(v.HARQDelay), v.TBIDs)
		}
	})

	tbs := res.RAN.Telemetry.ForUE(1)
	si, ci, ti := 0, 0, 0
	for now := time.Duration(0); now < cfg.Duration+2*time.Second; now += 50 * time.Millisecond {
		for si < len(res.CapSender.Records) && res.CapSender.Records[si].LocalTime <= now {
			lc.OnSenderRecord(res.CapSender.Records[si])
			si++
		}
		for ci < len(res.CapCore.Records) && res.CapCore.Records[ci].LocalTime <= now {
			lc.OnCoreRecord(res.CapCore.Records[ci])
			ci++
		}
		for ti < len(tbs) && tbs[ti].At <= now {
			lc.OnTB(tbs[ti])
			ti++
		}
		lc.Advance(now)
	}

	fmt.Printf("\nstreamed %d packets, %d TB attempts\n", si, ti)
	fmt.Printf("resolved live: %d packets (%d waited on a BSR grant, %d HARQ-inflated)\n",
		emitted, bsrWaits, harqHits)
	fmt.Printf("grant mix observed: %s\n", grantMix(tbs))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func grantMix(tbs []telemetry.TBRecord) string {
	counts := map[telemetry.GrantKind]int{}
	for _, r := range tbs {
		counts[r.Grant]++
	}
	return fmt.Sprintf("proactive=%d requested=%d", counts[telemetry.GrantProactive], counts[telemetry.GrantRequested])
}

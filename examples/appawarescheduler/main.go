// appawarescheduler evaluates the §5.2 mitigation: the sender annotates
// its RTP packets with media metadata (frame rate, frame-size estimate,
// audio cadence), and the gNB issues right-sized uplink grants exactly
// when frames are generated — instead of slow BSR round trips plus
// trickling proactive grants. The paper projects this "has the potential
// to cut the delay inflation experienced by frames in half."
package main

import (
	"fmt"

	"athena"
)

func main() {
	fig := athena.M1(athena.Options{Seed: 1})

	fmt.Println("== App-aware RAN scheduling (§5.2) ==")
	fmt.Println("frame-level delay (first packet sent -> last packet at the core):")
	order := []string{
		"bsr-only", "proactive-only", "proactive+bsr (default)", "app-aware", "oracle",
	}
	for _, name := range order {
		fmt.Printf("  %-26s mean %6.2f ms   p95 %6.2f ms\n",
			name, fig.Scalars["mean_ms:"+name], fig.Scalars["p95_ms:"+name])
	}
	fmt.Printf("\napp-aware / default frame delay ratio: %.2f (paper projects <= 0.5)\n",
		fig.Scalars["appaware_over_default"])
	for _, n := range fig.Notes {
		fmt.Println("#", n)
	}
}

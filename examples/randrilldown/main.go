// randrilldown reproduces Fig 9's microscope view: a short window of the
// call where every packet is lined up against the transport blocks that
// carried it — first on a clean channel (scheduling-induced delay spread,
// over-granting), then on a lossy one (HARQ retransmissions inflating
// delay in 10 ms steps).
package main

import (
	"fmt"

	"athena"
)

func main() {
	fmt.Println("== Fig 9a: link-layer scheduling ==")
	fig := athena.Fig9a(athena.Options{Seed: 1})
	printDrill(fig)

	fmt.Println("\n== Fig 9b: link-layer retransmissions ==")
	fig = athena.Fig9b(athena.Options{Seed: 1})
	printDrill(fig)
}

func printDrill(fig *athena.FigureData) {
	for k, v := range fig.Scalars {
		fmt.Printf("  %s = %.3f\n", k, v)
	}
	shown := 0
	for _, n := range fig.Notes {
		fmt.Println(" ", n)
		shown++
		if shown > 40 {
			fmt.Printf("  ... (%d more rows)\n", len(fig.Notes)-shown)
			break
		}
	}
}

// phyawarecc evaluates the §5.3 mitigations: feeding physical-layer
// telemetry to the congestion controller. Three designs are compared
// against vanilla GCC on the same cell:
//
//   - gcc-phy:  the sender subtracts the RAN-attributed delay component
//     (slot alignment, BSR wait, HARQ) from each packet's arrival time
//     before the delay-gradient estimator sees it;
//   - gcc-mask: the RAN rewrites the arrival timestamps inside the RTCP
//     transport-wide feedback, leaving the sender unmodified;
//   - l4s:      an ECN accelerate/brake signal marked at the actual
//     uplink queue, blind to non-congestive delay spikes.
package main

import (
	"fmt"

	"athena"
)

func main() {
	fmt.Println("== RAN-aware congestion control (§5.3) ==")

	o := athena.Options{Seed: 1}
	m2 := athena.M2(o)
	fmt.Println("\nPHY-informed GCC (sender-side):")
	fmt.Printf("  idle cell:   gcc overuse %3.0f -> gcc-phy %3.0f; rate %4.0f -> %4.0f kbps\n",
		m2.Scalars["overuse:gcc"], m2.Scalars["overuse:gcc-phy"],
		m2.Scalars["rate_kbps:gcc"], m2.Scalars["rate_kbps:gcc-phy"])
	fmt.Printf("  loaded cell: gcc overuse %3.0f -> gcc-phy %3.0f (real congestion stays visible)\n",
		m2.Scalars["overuse:gcc+load"], m2.Scalars["overuse:gcc-phy+load"])

	m3 := athena.M3(o)
	fmt.Println("\nRAN-side delay masking in feedback (no endpoint change):")
	fmt.Printf("  overuse %3.0f -> %3.0f; rate %4.0f -> %4.0f kbps\n",
		m3.Scalars["overuse:gcc"], m3.Scalars["overuse:gcc-masked"],
		m3.Scalars["rate_kbps:gcc"], m3.Scalars["rate_kbps:gcc-masked"])

	m4 := athena.M4(o)
	fmt.Println("\nL4S-style accelerate/brake vs delay spikes (heavy fading):")
	fmt.Printf("  gcc: rate %4.0f kbps, uplink p95 %5.1f ms\n",
		m4.Scalars["rate_kbps:gcc@fade=heavy"], m4.Scalars["ul_p95_ms:gcc@fade=heavy"])
	fmt.Printf("  l4s: rate %4.0f kbps, uplink p95 %5.1f ms\n",
		m4.Scalars["rate_kbps:l4s@fade=heavy"], m4.Scalars["ul_p95_ms:l4s@fade=heavy"])

}

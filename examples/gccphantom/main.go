// gccphantom reproduces Fig 10 / §4: GCC running over an idle private 5G
// cell — no cross traffic, no congestion — still detects network overuse,
// because the RAN's scheduling and retransmission artifacts masquerade as
// a rising delay gradient.
package main

import (
	"fmt"

	"athena"
	"athena/internal/stats"
)

func main() {
	fig := athena.Fig10(athena.Options{Seed: 1})

	fmt.Println("== GCC on an idle 5G cell (Fig 10) ==")
	fmt.Printf("packets traced: %.0f\n", fig.Scalars["packets_traced"])
	fmt.Printf("phantom overuse detections: %.0f\n\n", fig.Scalars["overuse_detections"])

	// Render the gradient trace coarsely.
	for _, s := range fig.Series {
		if s.Name != "filtered delay gradient" {
			continue
		}
		pts := stats.Downsample(s.Points, 40)
		fmt.Println("filtered delay gradient (packet index -> slope):")
		for _, p := range pts {
			bar := sparn(p.Y)
			fmt.Printf("  %8.0f %+8.4f %s\n", p.X, p.Y, bar)
		}
	}
	for _, n := range fig.Notes {
		fmt.Println("#", n)
	}
}

// sparn renders a signed magnitude bar.
func sparn(v float64) string {
	n := int(v * 200)
	if n > 30 {
		n = 30
	}
	if n < -30 {
		n = -30
	}
	if n >= 0 {
		return "|" + repeat('+', n)
	}
	return repeat('-', -n) + "|"
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

// accessnetworks runs the §5.1 breadth studies: the same GCC-driven call
// over different duplexing configurations (S1) and over entirely
// different access technologies (S2) — showing that each physical layer
// injects its own artifact structure into what congestion control sees.
package main

import (
	"fmt"

	"athena"
)

func main() {
	o := athena.Options{Seed: 1}

	fmt.Println("== S1: duplexing strategies and slice lengths ==")
	s1 := athena.S1PHYContexts(o)
	for _, ctx := range []string{"tdd-2.5ms (paper)", "tdd-5ms (long slice)", "tdd-1.25ms (mmWave-like)", "fdd"} {
		fmt.Printf("  %-26s quantum %4.2f ms  ul p50 %5.1f ms  spread p90 %5.1f ms  overuse %3.0f  rate %4.0f kbps\n",
			ctx,
			s1.Scalars["quantum_ms:"+ctx],
			s1.Scalars["ul_p50_ms:"+ctx],
			s1.Scalars["spread_p90_ms:"+ctx],
			s1.Scalars["overuse:"+ctx],
			s1.Scalars["rate_kbps:"+ctx])
	}

	fmt.Println("\n== S2: access technologies ==")
	s2 := athena.S2AccessNetworks(o)
	for _, acc := range []string{"5g", "wifi", "leo", "wired"} {
		fmt.Printf("  %-6s ul p50 %5.1f ms  p99 %5.1f ms  frame jitter p50 %4.1f ms  fps p50 %4.1f  overuse %3.0f\n",
			acc,
			s2.Scalars["ul_p50_ms:"+acc],
			s2.Scalars["ul_p99_ms:"+acc],
			s2.Scalars["frame_jitter_p50_ms:"+acc],
			s2.Scalars["fps_p50:"+acc],
			s2.Scalars["overuse:"+acc])
	}
	fmt.Println()
	for _, n := range append(s1.Notes, s2.Notes...) {
		fmt.Println("#", n)
	}
}

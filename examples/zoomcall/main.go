// zoomcall reproduces the paper's §2 measurement campaign end-to-end: a
// two-party call where the sender sits behind a private 5G cell, with
// cross traffic ramping 0 → 14 → 16 → 18 Mbps in phases (time-compressed
// from the paper's five-minute phases), ICMP probes isolating WAN vs SFU
// jitter, and a delay spike plus a jitter episode exercising the Zoom
// adaptation policy of Fig 8.
package main

import (
	"fmt"
	"time"

	"athena"
	"athena/internal/packet"
	"athena/internal/ran"
	"athena/internal/rtp"
	"athena/internal/stats"
	"athena/internal/units"
)

func main() {
	cfg := athena.DefaultConfig()
	cfg.Duration = 2 * time.Minute
	cfg.CrossUEs = 6
	q := cfg.Duration / 4
	cfg.CrossPhases = []ran.CrossPhase{
		{Start: 0, Rate: 0},
		{Start: q, Rate: 14 * units.Mbps},
		{Start: 2 * q, Rate: 16 * units.Mbps},
		{Start: 3 * q, Rate: 18 * units.Mbps},
	}
	cfg.Spikes = []athena.Spike{{Start: 30 * time.Second, End: 38 * time.Second, Extra: 1100 * time.Millisecond}}
	cfg.Jitters = []athena.JitterEpisode{{Start: 80 * time.Second, End: 100 * time.Second, Amp: 130 * time.Millisecond}}

	res := athena.Run(cfg)
	rep := res.Report

	fmt.Println("== 5G teleconferencing pitfalls (paper §2) ==")

	// Fig 3 takeaways: where does jitter come from?
	up := rep.ULDelaysMS(packet.KindVideo)
	probes := res.Prober.OWDsMS()
	fmt.Printf("uplink  video OWD: p50=%.1f p95=%.1f ms (the jitter source)\n",
		stats.Quantile(up, 0.5), stats.Quantile(up, 0.95))
	fmt.Printf("probe core->SFU:   p50=%.1f p95=%.1f ms (WAN is stable)\n\n",
		stats.Quantile(probes, 0.5), stats.Quantile(probes, 0.95))

	// Fig 4: audio vs video.
	audio := rep.ULDelaysMS(packet.KindAudio)
	fmt.Printf("audio p50 %.1f ms vs video p50 %.1f ms — audio rarely spans packets,\n"+
		"so it only waits when sent alongside a frame\n\n",
		stats.Quantile(audio, 0.5), stats.Quantile(up, 0.5))

	// Fig 5: delay spread quantization.
	_, core := rep.SpreadsMS()
	fmt.Printf("frame delay spread at the core: p50=%.1f p90=%.1f ms, in 2.5 ms steps\n\n",
		stats.Quantile(core, 0.5), stats.Quantile(core, 0.9))

	// Fig 8: adaptation.
	fmt.Printf("Zoom adaptation: %d SVC mode changes, %d transient frame-skip events\n",
		res.Sender.Adapt().ModeChanges(), res.Sender.SkipEvents)
	for _, l := range []rtp.SVCLayer{rtp.LayerBase, rtp.LayerLowFPSEnhancement, rtp.LayerHighFPSEnhancement, rtp.LayerAudio} {
		pts := res.Receiver.LayerRateSeries(l)
		if len(pts) == 0 {
			continue
		}
		var sum float64
		for _, p := range pts {
			sum += p.Y
		}
		fmt.Printf("  %-18s mean %.0f kbps over %d seconds\n", l, sum/float64(len(pts)), len(pts))
	}

	fmt.Println()
	fmt.Print(rep.Attribute())
}

// registry demonstrates the experiment registry as an extension point:
// it registers a custom out-of-tree experiment (X1, a 5G-vs-WiFi uplink
// delay comparison that exists nowhere in the athena package), then
// sweeps it alongside a built-in figure through the same engine that
// powers cmd/athena-bench — selection is case-insensitive, output
// streams in canonical order, and the two runs' JSON manifests are
// diffed digest-for-digest. Exits 1 if the digests disagree, which is
// exactly the check a regression CI job would make.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"athena"
	"athena/internal/packet"
)

// x1 compares the video uplink delay tail over a private 5G cell and
// over Wi-Fi, holding the application and congestion controller fixed.
func x1(o athena.Options) *athena.FigureData {
	fig := athena.NewFigure("X1", "Custom: 5G vs Wi-Fi video uplink tail")
	accesses := []athena.AccessKind{athena.Access5G, athena.AccessWiFi}
	cfgs := make([]athena.Config, len(accesses))
	for i, acc := range accesses {
		cfg := athena.DefaultConfig()
		cfg.Seed = o.SeedOrDefault()
		cfg.Duration = o.Scaled(8 * time.Second)
		cfg.Access = acc
		cfgs[i] = cfg
	}
	for i, res := range athena.RunAll(cfgs) {
		sum := res.Report.DelaySummary(packet.KindVideo)
		fig.Scalars["ul_p95_ms:"+string(accesses[i])] = sum.P95
	}
	fig.Note("custom out-of-tree experiment, registered by examples/registry")
	return fig
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("registry: ")

	if err := athena.RegisterExperiment(athena.Experiment{
		ID:          "X1",
		Title:       "Custom: 5G vs Wi-Fi video uplink tail",
		Family:      "custom",
		Tags:        []string{"custom", "access"},
		Description: "Out-of-tree experiment registered at runtime by this example.",
		Gen:         x1,
	}); err != nil {
		log.Fatal(err)
	}

	// Case-insensitive ID selection: the built-in F6 and our X1.
	sel, err := athena.SelectExperiments(athena.Selection{IDs: []string{"x1", "f6"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== selected experiments ==")
	for _, e := range sel {
		fmt.Printf("  %-4s %-8s %s\n", e.ID, e.Family, e.Title)
	}

	// Sweep the same selection twice with identical options; the
	// content digests must match run-to-run (generators are pure
	// functions of Options).
	opts := athena.Options{Seed: 1, Scale: 0.1}
	sweep := func() ([]athena.RunResult, *athena.Manifest) {
		rs := athena.SweepExperiments(context.Background(), sel,
			athena.SweepConfig{Options: opts, Parallel: 2})
		for _, r := range rs {
			if r.Err != nil {
				log.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
		}
		return rs, athena.NewManifest(opts, rs)
	}
	first, m1 := sweep()
	_, m2 := sweep()

	fmt.Println("\n== run 1 ==")
	for _, r := range first {
		fmt.Printf("  %-4s digest %.12s  wall %v\n",
			r.Experiment.ID, r.Digest, r.Wall.Round(time.Millisecond))
	}

	if diffs := athena.DiffManifests(m1, m2); len(diffs) != 0 {
		fmt.Println("\ndigest mismatch between identical runs:")
		for _, d := range diffs {
			fmt.Println("  " + d)
		}
		os.Exit(1)
	}
	fmt.Println("\nrun 2 reproduced every digest — sweep output is deterministic")
}

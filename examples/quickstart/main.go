// Quickstart: run a 20-second Zoom-like call over the simulated private
// 5G cell, then print what Athena's cross-layer correlation sees.
package main

import (
	"fmt"
	"time"

	"athena"
	"athena/internal/packet"
)

func main() {
	cfg := athena.DefaultConfig()
	cfg.Duration = 20 * time.Second

	res := athena.Run(cfg)
	rep := res.Report

	fmt.Println("Athena quickstart — one call, four capture points, one PHY sniffer")
	fmt.Printf("correlated %d packets into %d frames/samples\n\n", len(rep.Packets), len(rep.Frames))

	fmt.Printf("video uplink delay: %s\n", rep.DelaySummary(packet.KindVideo))
	fmt.Printf("audio uplink delay: %s\n\n", rep.DelaySummary(packet.KindAudio))

	fmt.Print(rep.Attribute())

	fmt.Printf("\nreceiver QoE: %d frames displayed, %d stalls, %d SSIM samples\n",
		res.Receiver.Renderer.DisplayTimes.Len(),
		res.Receiver.Renderer.Stalls,
		len(res.Receiver.Renderer.SSIMs))
}

// Mixedcell: four different applications — a video call, a cloud-gaming
// session, a bulk upload, and an audio-only call — share one private 5G
// cell. Each UE picks its family with UESpec.Workload; the endpoints,
// traffic patterns and QoE scores differ per app, but every packet
// crosses the same slot-accurate RAN and the same Athena correlator
// attributes its delay. The example prints each participant's app score
// next to its wireless attribution, then verifies that the mixed cell is
// deterministic: a second run must be byte-identical, overall and per
// workload family.
package main

import (
	"fmt"
	"os"
	"time"

	"athena"
	"athena/internal/core"
)

func buildTopology() athena.Topology {
	top := athena.NewTopology(4)
	top.Duration = 6 * time.Second
	top.MixWorkloads() // round-robin: vca, cloud-gaming, bulk-transfer, audio-only
	return top
}

func main() {
	tr := athena.RunTopology(buildTopology())

	fmt.Printf("mixed cell: %d apps on one 5G cell, %v simulated\n\n",
		len(tr.UEs), tr.Top.Duration)

	ok := true
	for _, u := range tr.UEs {
		fmt.Printf("ue%d %-13s %s\n", u.ID, u.Workload, u.Score)
		att := u.Report.Attribute()
		if att.Packets == 0 {
			fmt.Printf("  NO ATTRIBUTED PACKETS\n")
			ok = false
			continue
		}
		fmt.Printf("  wireless attribution over %d packets: ", att.Packets)
		for _, c := range []core.Cause{core.CauseQueueSlot, core.CauseBSR, core.CauseHARQ, core.CauseWAN} {
			fmt.Printf("%s=%.2fms ", c, att.MeanMS(c))
		}
		fmt.Println()
	}

	// Determinism: the whole mixed cell re-runs byte-identically, and
	// each family's slice of the output hashes to the same digest.
	tr2 := athena.RunTopology(buildTopology())
	fmt.Print("\ndeterminism: ")
	if tr.Digest() != tr2.Digest() {
		fmt.Println("FAILED — second run diverged")
		ok = false
	} else {
		fmt.Println("second run byte-identical")
	}
	fams, fams2 := tr.FamilyDigests(), tr2.FamilyDigests()
	for _, kind := range athena.WorkloadKinds() {
		d, found := fams[kind]
		if !found {
			fmt.Printf("  family %-13s MISSING\n", kind)
			ok = false
			continue
		}
		if fams2[kind] != d {
			fmt.Printf("  family %-13s DIVERGED between runs\n", kind)
			ok = false
			continue
		}
		fmt.Printf("  family %-13s digest %s\n", kind, d[:16])
	}

	if !ok {
		os.Exit(1)
	}
	fmt.Println("all four app families correlated and deterministic on one shared cell")
}

package athena_test

import (
	"fmt"
	"time"

	"athena"
	"athena/internal/packet"
)

// The frame structure is pure configuration, so its rendering is stable.
func ExampleDefaultConfig() {
	cfg := athena.DefaultConfig()
	fmt.Print(cfg.RAN.FrameStructure())
	// Output:
	// TDD pattern (one period = 2.5ms):
	//   [D][D][D][D][U]
	// Uplink slot every 2.5ms; BSR -> requested grant after 10ms; HARQ retransmission after 10ms
}

// Run executes a complete testbed scenario; the report carries per-packet
// delays and root-cause attribution. (No Output comment: simulation
// results are deterministic per seed but not stable across versions.)
func ExampleRun() {
	cfg := athena.DefaultConfig()
	cfg.Duration = 5 * time.Second
	res := athena.Run(cfg)

	fmt.Println(res.Report.DelaySummary(packet.KindVideo))
	fmt.Print(res.Report.Attribute())
}

// Figure drivers regenerate the paper's artifacts as plot-ready data.
func ExampleFig5() {
	fig := athena.Fig5(athena.Options{Seed: 1, Scale: 0.1})
	fmt.Println(fig.ID, len(fig.Series) > 0)
}

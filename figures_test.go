package athena

import (
	"strings"
	"testing"
	"time"

	"athena/internal/stats"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.SeedOrDefault() != 1 {
		t.Fatalf("default seed = %d", o.SeedOrDefault())
	}
	if o.Scaled(time.Minute) != time.Minute {
		t.Fatalf("zero scale should be identity: %v", o.Scaled(time.Minute))
	}
	o = Options{Seed: 7, Scale: 0.5}
	if o.SeedOrDefault() != 7 || o.Scaled(time.Minute) != 30*time.Second {
		t.Fatalf("options not applied: %d %v", o.SeedOrDefault(), o.Scaled(time.Minute))
	}
}

func TestFigureDataString(t *testing.T) {
	fig := NewFigure("FX", "a title")
	fig.Scalars["alpha"] = 1
	fig.Add("line", []stats.Point{{X: 1, Y: 2}})
	fig.Note("note %d", 42)
	out := fig.String()
	for _, want := range []string{"== FX: a title ==", "alpha = 1.000", "# line (1 points)", "# note 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCDFPointsHelper(t *testing.T) {
	pts := cdfPoints([]float64{1, 2, 3, 4}, 10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("CDF must end at 1: %v", pts[len(pts)-1])
	}
}

func TestMSHelper(t *testing.T) {
	if ms(1500*time.Microsecond) != 1.5 {
		t.Fatalf("ms = %v", ms(1500*time.Microsecond))
	}
}

func TestRateStepStddev(t *testing.T) {
	if rateStepStddev([]float64{100}) != 0 {
		t.Fatal("single sample should be 0")
	}
	// Constant relative steps → zero variance.
	if got := rateStepStddev([]float64{100, 110, 121}); got > 1e-9 {
		t.Fatalf("constant growth stddev = %v", got)
	}
	if rateStepStddev([]float64{100, 150, 100, 150}) <= 0 {
		t.Fatal("oscillation should have positive stddev")
	}
}

func TestTracePoints(t *testing.T) {
	pts := tracePoints([]float64{5, 6})
	if len(pts) != 2 || pts[1].X != 1 || pts[1].Y != 6 {
		t.Fatalf("tracePoints = %v", pts)
	}
}

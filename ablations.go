package athena

import (
	"context"
	"fmt"
	"time"

	"athena/internal/clock"
	"athena/internal/core"
	"athena/internal/experiment"
	"athena/internal/packet"
	"athena/internal/ran"
	"athena/internal/runner"
	"athena/internal/sim"
	"athena/internal/stats"
	"athena/internal/telemetry"
	"athena/internal/units"
)

func init() {
	experiment.MustRegister(
		Experiment{ID: "A1", Family: "ablation", Tags: []string{"ablation", "scheduling", "smoke"},
			Title:       "Ablation: BSR scheduling delay vs frame delay spread",
			Description: "A1: sweeping the ~10 ms BSR scheduling delay that roots Fig 5's spread distribution.",
			Gen:         A1},
		Experiment{ID: "A2", Family: "ablation", Tags: []string{"ablation", "scheduling"},
			Title:       "Ablation: proactive grant size — spread vs waste tradeoff",
			Description: "A2: small proactive grants stretch the spread, large ones waste cell capacity.",
			Gen:         A2},
		Experiment{ID: "A3", Family: "ablation", Tags: []string{"ablation", "harq"},
			Title:       "Ablation: BLER vs uplink delay tail",
			Description: "A3: each HARQ round adds 10 ms, so the p99 climbs in visible steps with loss.",
			Gen:         A3},
		Experiment{ID: "A4", Family: "ablation", Tags: []string{"ablation", "correlator"},
			Title:       "Ablation: time-sync error vs packet-TB match accuracy",
			Description: "A4: how good NTP must be for Athena's cross-layer join to hold.",
			Gen:         A4},
	)
}

// A1 sweeps the BSR scheduling delay (the ~10 ms of §3.1) and reports the
// resulting frame-level delay spread — the design constant DESIGN.md
// calls out as the root of Fig 5's distribution.
func A1(o Options) *FigureData {
	fig := NewFigure("A1", "Ablation: BSR scheduling delay vs frame delay spread")
	delays := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond, 20 * time.Millisecond}
	cfgs := make([]Config, len(delays))
	for i, sd := range delays {
		cfg := DefaultConfig()
		cfg.Seed = o.SeedOrDefault()
		cfg.Duration = o.Scaled(30 * time.Second)
		cfg.RAN.BLER = 0
		cfg.RAN.FadeMeanBad = 0
		cfg.RAN.SchedDelay = sd
		// Pin the media rate high enough that frames outgrow the
		// proactive drain and the BSR cycle governs the spread.
		cfg.InitialRate, cfg.MinRate, cfg.MaxRate = 2*units.Mbps, 2*units.Mbps, 2*units.Mbps
		cfgs[i] = cfg
	}
	var pts []stats.Point
	for i, res := range RunAll(cfgs) {
		_, coreSp := res.Report.SpreadsMS()
		p90 := stats.QuantileInPlace(coreSp, 0.9)
		pts = append(pts, stats.Point{X: ms(delays[i]), Y: p90})
		fig.Scalars[fmt.Sprintf("spread_p90_ms@sched=%v", delays[i])] = p90
	}
	fig.Add("p90 core delay spread vs sched delay (x=ms)", pts)
	fig.Note("spread grows with the BSR scheduling delay: frames wait longer for the requested grant")
	return fig
}

// A2 sweeps the proactive grant size: small grants stretch the spread,
// large grants waste capacity (efficiency of proactive TBs drops).
func A2(o Options) *FigureData {
	fig := NewFigure("A2", "Ablation: proactive grant size — spread vs waste tradeoff")
	sizes := []units.ByteCount{800, 1600, 3200, 6000}
	cfgs := make([]Config, len(sizes))
	for i, tbs := range sizes {
		cfg := DefaultConfig()
		cfg.Seed = o.SeedOrDefault()
		cfg.Duration = o.Scaled(30 * time.Second)
		cfg.RAN.BLER = 0
		cfg.RAN.FadeMeanBad = 0
		cfg.RAN.ProactiveTBS = tbs
		cfgs[i] = cfg
	}
	var spreadPts, effPts []stats.Point
	for i, res := range RunAll(cfgs) {
		tbs := sizes[i]
		_, coreSp := res.Report.SpreadsMS()
		var pro []telemetry.TBRecord
		for _, r := range res.RAN.Telemetry.ForUE(1) {
			if r.Grant == telemetry.GrantProactive {
				pro = append(pro, r)
			}
		}
		eff := telemetry.WasteOf(pro).Efficiency()
		p90 := stats.QuantileInPlace(coreSp, 0.9)
		spreadPts = append(spreadPts, stats.Point{X: float64(tbs), Y: p90})
		effPts = append(effPts, stats.Point{X: float64(tbs), Y: eff})
		fig.Scalars[fmt.Sprintf("spread_p90_ms@tbs=%d", tbs)] = p90
		fig.Scalars[fmt.Sprintf("proactive_eff@tbs=%d", tbs)] = eff
	}
	fig.Add("p90 spread ms vs proactive TBS bytes", spreadPts)
	fig.Add("proactive TB efficiency vs TBS bytes", effPts)
	fig.Note("bigger proactive grants shrink the spread but waste more of the cell — the §3.1 tension")
	return fig
}

// A3 sweeps the block error rate and reports the uplink delay tail: each
// HARQ round adds 10 ms, so the p99 climbs in visible steps.
func A3(o Options) *FigureData {
	fig := NewFigure("A3", "Ablation: BLER vs uplink delay tail")
	blers := []float64{0, 0.05, 0.1, 0.2, 0.3}
	cfgs := make([]Config, len(blers))
	for i, bler := range blers {
		cfg := DefaultConfig()
		cfg.Seed = o.SeedOrDefault()
		cfg.Duration = o.Scaled(30 * time.Second)
		cfg.RAN.BLER = bler
		cfg.RAN.FadeMeanBad = 0
		cfgs[i] = cfg
	}
	var pts []stats.Point
	for i, res := range RunAll(cfgs) {
		p99 := res.Report.DelaySummary(packet.KindVideo).P99
		pts = append(pts, stats.Point{X: blers[i], Y: p99})
		fig.Scalars[fmt.Sprintf("ul_p99_ms@bler=%.2f", blers[i])] = p99
	}
	fig.Add("video uplink p99 ms vs BLER", pts)
	fig.Note("the delay tail climbs with loss in ~10 ms HARQ steps")
	return fig
}

// A4 sweeps the correlator's clock-sync error and reports packet↔TB
// matching accuracy — how good NTP needs to be for Athena's cross-layer
// join to hold.
func A4(o Options) *FigureData {
	fig := NewFigure("A4", "Ablation: time-sync error vs packet-TB match accuracy")

	// Build one session with ground truth, then correlate repeatedly
	// under increasing artificial sender-clock error.
	s := sim.New(o.SeedOrDefault())
	cfg := ran.Defaults()
	type arr struct {
		p  *packet.Packet
		at time.Duration
	}
	var arrivals []arr
	coreTap := packet.NewCapture(packet.PointCore, clock.Perfect("core"), s.Now,
		packet.HandlerFunc(func(p *packet.Packet) { arrivals = append(arrivals, arr{p, s.Now()}) }))
	r := ran.New(s, cfg, coreTap)
	ue := r.AttachUE(1, ran.SchedCombined)
	senderTap := packet.NewCapture(packet.PointSender, clock.Perfect("sender"), s.Now, ue)
	var alloc packet.Alloc
	var sent []*packet.Packet
	seq := uint16(0)
	s.Every(3*time.Millisecond, 33*time.Millisecond, func() {
		if s.Now() > o.Scaled(20*time.Second) {
			return
		}
		for i := 0; i < 4; i++ {
			p := alloc.New(packet.KindVideo, 1, 1200, s.Now())
			p.Seq = uint32(seq)
			seq++
			sent = append(sent, p)
			senderTap.Handle(p)
		}
	})
	s.RunUntil(o.Scaled(20*time.Second) + time.Second)

	truth := map[uint64][]uint64{}
	idx := map[uint32]uint64{}
	for _, p := range sent {
		truth[p.ID] = p.GroundTruth.TBIDs
		idx[p.Seq] = p.ID
	}
	idOf := func(flow, sq uint32, kind packet.Kind) (uint64, bool) {
		id, ok := idx[sq]
		return id, ok
	}

	// Correlate is a pure function of its Input (it sorts copies of the
	// capture records), so the sweep points run concurrently against the
	// one shared session.
	errs := []float64{0, 2, 5, 10, 20, 40}
	accs := make([]float64, len(errs))
	runner.Default.ForEach(context.Background(), len(errs), func(i int) {
		rep := core.Correlate(core.Input{
			Sender: senderTap.Records,
			Core:   coreTap.Records,
			TBs:    r.Telemetry.ForUE(1),
			Offsets: map[packet.Point]time.Duration{
				packet.PointSender: -time.Duration(errs[i] * float64(time.Millisecond)),
			},
			SlotDuration: cfg.SlotDuration,
			CoreDelay:    cfg.CoreDelay,
		})
		accs[i] = rep.MatchAccuracy(truth, idOf)
	})
	var pts []stats.Point
	for i, errMS := range errs {
		pts = append(pts, stats.Point{X: errMS, Y: accs[i]})
		fig.Scalars[fmt.Sprintf("match_acc@err=%.0fms", errMS)] = accs[i]
	}
	fig.Add("packet-TB match accuracy vs sync error ms", pts)
	fig.Note("matching is exact with good sync and degrades once the error exceeds the slot/burst timescale")
	return fig
}

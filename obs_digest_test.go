package athena

// Observability must never perturb what it observes: enabling the obs
// metrics registry and span timeline cannot change a single experiment
// digest. This is the acceptance-criteria test for the obs layer — it
// sweeps the ENTIRE registry twice, instrumentation off then on, and
// requires byte-identical artifacts, while also proving the instrumented
// sweep really re-executed (the shared pool is flushed in between, and
// the counters and timeline must show activity).

import (
	"bytes"
	"context"
	"testing"

	"athena/internal/obs"
	"athena/internal/runner"
)

func TestDigestsUnchangedByObservability(t *testing.T) {
	sel, err := SelectExperiments(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 1, Scale: 0.05}
	ctx := context.Background()

	obs.Disable()
	base := SweepExperiments(ctx, sel, SweepConfig{Options: opts, Parallel: 2})

	// The shared scenario pool memoizes by config; without a flush the
	// instrumented sweep would just recall cached Results and this test
	// would be vacuous.
	runner.Default.Flush()

	obs.Enable()
	tl := obs.NewTracer()
	obs.SetTimeline(tl)
	defer func() {
		obs.SetTimeline(nil)
		obs.Disable()
	}()
	instr := SweepExperiments(ctx, sel, SweepConfig{Options: opts, Parallel: 2})

	if len(base) != len(instr) || len(base) == 0 {
		t.Fatalf("sweep sizes differ: %d vs %d", len(base), len(instr))
	}
	for i := range base {
		if base[i].Err != nil || instr[i].Err != nil {
			t.Fatalf("%s errored: %v / %v", base[i].Experiment.ID, base[i].Err, instr[i].Err)
		}
		if base[i].Digest != instr[i].Digest {
			t.Errorf("%s digest changed under instrumentation: %.12s vs %.12s",
				base[i].Experiment.ID, base[i].Digest, instr[i].Digest)
		}
	}
	if diffs := DiffManifests(NewManifest(opts, base), NewManifest(opts, instr)); len(diffs) != 0 {
		t.Fatalf("manifests diverge under instrumentation: %v", diffs)
	}

	// Non-vacuity: the instrumented sweep must have recorded real work.
	snap := obs.TakeSnapshot()
	if snap.Counters["sim.events_fired"] == 0 {
		t.Fatal("instrumented sweep fired no sim events — was the pool flushed?")
	}
	if snap.Counters["runner.default.memo_misses"] == 0 {
		t.Fatal("instrumented sweep hit only memoized results")
	}
	spans := tl.Snapshot()
	expSpans := 0
	for _, s := range spans {
		if len(s.Name) > 4 && s.Name[:4] == "exp:" {
			expSpans++
		}
	}
	if expSpans != len(sel) {
		t.Fatalf("timeline has %d experiment spans, want %d", expSpans, len(sel))
	}

	// The same registry state must also render as well-formed Prometheus
	// exposition: whatever an instrumented sweep accumulates, /metrics
	// has to lint under the in-repo parser, and the counters asserted
	// above must survive the name mapping.
	var prom bytes.Buffer
	if err := obs.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	pt, err := obs.ParsePrometheus(&prom)
	if err != nil {
		t.Fatalf("instrumented exposition does not lint: %v", err)
	}
	if pt.Families[obs.PromName("sim.events_fired")] == nil {
		t.Fatalf("exposition lost sim.events_fired (%d families)", len(pt.Families))
	}
}

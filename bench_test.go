package athena

// One benchmark per evaluation artifact in the paper (figures F3–F10,
// §5 mitigations M1–M4) plus the design ablations A1–A4 from DESIGN.md.
// Each bench regenerates its figure's series and prints them (first
// iteration only), and reports the figure's headline scalars as bench
// metrics so `go test -bench` output carries the reproduction numbers.
//
// Absolute values come from the simulated substrate; the reproduction
// targets are the paper's *shapes*: who wins, step sizes, and direction
// of effects. EXPERIMENTS.md records paper-vs-measured per artifact.

import (
	"fmt"
	"strings"
	"testing"
)

// benchFigure runs driver once per iteration, printing the figure once.
func benchFigure(b *testing.B, driver func(Options) *FigureData, metrics ...string) {
	b.Helper()
	var fig *FigureData
	for i := 0; i < b.N; i++ {
		fig = driver(Options{Seed: 1, Scale: 1})
	}
	if fig == nil {
		return
	}
	fmt.Println(fig)
	for _, m := range metrics {
		if v, ok := fig.Scalars[m]; ok {
			// testing.B rejects units containing whitespace.
			unit := strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(m)
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkFig3OneWayDelay(b *testing.B) {
	benchFigure(b, Fig3, "uplink_p95_ms", "downstream_p95_ms", "icmp_p95_ms")
}

func BenchmarkFig4AudioVideoDelay(b *testing.B) {
	benchFigure(b, Fig4, "audio_p50_ms", "video_p50_ms", "audio_p99_ms")
}

func BenchmarkFig5DelaySpread(b *testing.B) {
	benchFigure(b, Fig5, "core_spread_p90_ms", "fraction_on_2.5ms_grid")
}

func BenchmarkFig6FrameStructure(b *testing.B) {
	benchFigure(b, Fig6, "ul_period_ms", "sched_delay_ms", "harq_rtt_ms")
}

func BenchmarkFig7QoE5GvsEmulated(b *testing.B) {
	benchFigure(b, Fig7,
		"5g_bitrate_p50_kbps", "em_bitrate_p50_kbps",
		"5g_jitter_p50_ms", "em_jitter_p50_ms",
		"5g_fps_p50", "em_fps_p50",
		"5g_ssim_p50", "em_ssim_p50")
}

func BenchmarkFig8ZoomAdaptation(b *testing.B) {
	benchFigure(b, Fig8, "mode_changes", "skip_events")
}

func BenchmarkFig9aSchedulingDrilldown(b *testing.B) {
	benchFigure(b, Fig9a, "requested_tb_efficiency", "unused_requested_tbs")
}

func BenchmarkFig9bRetransmissionDrilldown(b *testing.B) {
	benchFigure(b, Fig9b, "harq_inflation_p50_ms", "empty_tb_retransmissions")
}

func BenchmarkFig10GCCPhantomOveruse(b *testing.B) {
	benchFigure(b, Fig10, "overuse_detections", "packets_traced")
}

func BenchmarkM1AppAwareScheduler(b *testing.B) {
	benchFigure(b, M1, "appaware_over_default",
		"mean_ms:proactive+bsr (default)", "mean_ms:app-aware", "mean_ms:oracle")
}

func BenchmarkM2PHYInformedGCC(b *testing.B) {
	benchFigure(b, M2,
		"overuse:gcc", "overuse:gcc-phy",
		"rate_kbps:gcc", "rate_kbps:gcc-phy",
		"overuse:gcc+load", "overuse:gcc-phy+load")
}

func BenchmarkM3DelayMasking(b *testing.B) {
	benchFigure(b, M3, "overuse:gcc", "overuse:gcc-masked",
		"rate_kbps:gcc", "rate_kbps:gcc-masked")
}

func BenchmarkM4L4SAccelBrake(b *testing.B) {
	benchFigure(b, M4,
		"rate_kbps:gcc@fade=heavy", "rate_kbps:l4s@fade=heavy",
		"ul_p95_ms:gcc@fade=heavy", "ul_p95_ms:l4s@fade=heavy")
}

func BenchmarkA1SchedDelaySweep(b *testing.B) {
	benchFigure(b, A1, "spread_p90_ms@sched=5ms", "spread_p90_ms@sched=20ms")
}

func BenchmarkA2ProactiveGrantSweep(b *testing.B) {
	benchFigure(b, A2, "spread_p90_ms@tbs=800", "proactive_eff@tbs=6000")
}

func BenchmarkA3BLERSweep(b *testing.B) {
	benchFigure(b, A3, "ul_p99_ms@bler=0.00", "ul_p99_ms@bler=0.30")
}

func BenchmarkA4SyncErrorSweep(b *testing.B) {
	benchFigure(b, A4, "match_acc@err=0ms", "match_acc@err=5ms", "match_acc@err=20ms")
}

func BenchmarkS1PHYContexts(b *testing.B) {
	benchFigure(b, S1PHYContexts,
		"spread_p90_ms:tdd-2.5ms (paper)", "spread_p90_ms:fdd",
		"overuse:tdd-2.5ms (paper)", "overuse:fdd")
}

func BenchmarkS2AccessNetworks(b *testing.B) {
	benchFigure(b, S2AccessNetworks,
		"ul_p50_ms:5g", "ul_p50_ms:wifi", "ul_p50_ms:leo", "ul_p50_ms:wired")
}

func BenchmarkS3LearningCC(b *testing.B) {
	benchFigure(b, S3LearningCC,
		"rate_kbps:wired", "rate_kbps:5g",
		"down_decisions:wired", "down_decisions:5g")
}

func BenchmarkS4AppDiversity(b *testing.B) {
	benchFigure(b, S4AppDiversity,
		"late_inputs:cloud-gaming@5g-combined", "late_inputs:cloud-gaming@5g-bsr-only",
		"burst_p95_ms:web@5g-combined", "mbps:upload@5g-combined")
}
